//! The unified **plan IR**: one typed DAG for agent invocations, data
//! operators, and guard/fallback annotations.
//!
//! The paper treats task plans (§V-F, Fig 6) and data plans (§V-G, Fig 7)
//! as one composable artifact — a data plan is *spliced* into the task plan
//! as an input transformation, and the optimizer picks operators and model
//! tiers over the whole composite DAG. This module is that artifact:
//!
//! * [`PlanIr::lower`] / [`PlanIr::lower_typed`] lower a [`TaskPlan`] into
//!   IR (the typed variant fills port types from registry agent specs);
//! * [`PlanIr::from_data_plan`] lowers a standalone [`DataPlan`];
//! * [`PlanIr::splice`] inlines a data plan into the task node that owns its
//!   `FromData` binding, rewriting the binding to [`IrBinding::Spliced`];
//! * [`PlanIr::lower_spliced`] does all of the above for every `FromData`
//!   binding via the [`DataPlanner`]'s routing, annotating `Knowledge`
//!   operators with their interchangeable parametric sources;
//! * [`PlanIr::optimize`] runs the optimizer's joint Pareto-pruned search
//!   over every choice point (model tiers *and* data sources) at once;
//! * [`PlanIr::reoptimize_pending`] is the bounded mid-flight pass the
//!   coordinator triggers when observed cost drifts past its estimate.

use std::collections::{BTreeMap, HashMap, HashSet};

use serde::{Deserialize, Serialize};
use serde_json::Value;

use blueprint_agents::{CostProfile, DataType};
use blueprint_datastore::CostEstimate;
use blueprint_optimizer::{
    optimize_unified, select, Candidate, ChoicePoint, Objective, QosConstraints,
};
use blueprint_registry::AgentRegistry;

use crate::data_plan::{DataNode, DataOp, DataPlan};
use crate::data_planner::DataPlanner;
use crate::error::PlanError;
use crate::plan::{InputBinding, PlanEdge, TaskPlan};
use crate::Result;

/// A typed port on an IR node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IrPort {
    /// Parameter name.
    pub name: String,
    /// Expected value type (from the agent spec; `Any` when unknown).
    pub dtype: DataType,
}

/// Where an IR node's input comes from. Mirrors [`InputBinding`] plus the
/// [`IrBinding::Spliced`] variant produced by inlining a data plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum IrBinding {
    /// The original user utterance.
    FromUser,
    /// The named output of an upstream agent node.
    FromNode {
        /// Producing node id.
        node: String,
        /// Output parameter name on that node's agent.
        output: String,
    },
    /// A constant.
    Literal(Value),
    /// Still unresolved: the data planner routes this at execution time
    /// (present only in un-spliced IR).
    FromData {
        /// Natural-language description of the data needed.
        query: String,
    },
    /// Satisfied by the inlined data-operator subgraph owned by this
    /// `(node, slot)`; `output` names the subgraph's result node.
    Spliced {
        /// Result node id of the inlined data plan.
        output: String,
        /// The original `FromData` query (kept for replanning and display).
        query: String,
    },
}

/// What an IR node *is*.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum IrKind {
    /// Invoke a registry agent.
    AgentInvocation {
        /// Agent name.
        agent: String,
        /// The sub-task description this node covers.
        task: String,
    },
    /// Execute a data operator (from a spliced or standalone data plan).
    /// The full [`DataNode`] is embedded so the coordinator reconstructs the
    /// owning sub-plan byte-for-byte.
    DataOperator {
        /// The operator instance, including its slot wiring and estimate.
        node: DataNode,
        /// `(agent node id, input slot)` this operator was spliced under;
        /// `None` for standalone data-plan lowerings.
        owner: Option<(String, String)>,
    },
    /// A resilience annotation: the protected node may fall back or be
    /// skipped under pressure (mirrors the coordinator's degradation
    /// ladder, so the IR carries the full execution semantics).
    Guard {
        /// The node this guard protects.
        protects: String,
        /// Fallback agent to substitute on failure, if any.
        fallback: Option<String>,
        /// Accuracy penalty charged when the fallback runs.
        accuracy_penalty: f64,
        /// Whether the node may be skipped entirely under budget pressure.
        skippable: bool,
    },
}

/// One interchangeable implementation of a node (a model tier for an LLM
/// node, a parametric source for a `Knowledge` operator).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IrAlternative {
    /// Human-level tier label (e.g. `sim-large`).
    pub tier: String,
    /// Concrete target to substitute (source name or agent name).
    pub target: String,
    /// Estimated QoS of choosing it.
    pub profile: CostProfile,
}

/// Per-node QoS annotation: the current estimate plus the alternatives the
/// optimizer may swap in.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IrQos {
    /// Estimated QoS of the currently selected implementation.
    pub profile: CostProfile,
    /// Tier label of the current selection, when tiered.
    pub tier: Option<String>,
    /// Interchangeable implementations (empty when the node is fixed).
    pub alternatives: Vec<IrAlternative>,
}

impl IrQos {
    fn fixed(profile: CostProfile) -> Self {
        IrQos {
            profile,
            tier: None,
            alternatives: Vec::new(),
        }
    }
}

/// One node of the unified plan IR.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IrNode {
    /// Node id, unique across the whole IR.
    pub id: String,
    /// Agent invocation, data operator, or guard.
    pub kind: IrKind,
    /// Input bindings (agent nodes; data operators carry their wiring in
    /// the embedded [`DataNode`], mirrored here for rendering).
    pub inputs: BTreeMap<String, IrBinding>,
    /// Typed input ports.
    pub in_ports: Vec<IrPort>,
    /// Typed output ports.
    pub out_ports: Vec<IrPort>,
    /// QoS annotation.
    pub qos: IrQos,
}

impl IrNode {
    /// True for agent-invocation nodes.
    pub fn is_agent(&self) -> bool {
        matches!(self.kind, IrKind::AgentInvocation { .. })
    }

    /// The agent name and task, for agent-invocation nodes.
    pub fn agent(&self) -> Option<(&str, &str)> {
        match &self.kind {
            IrKind::AgentInvocation { agent, task } => Some((agent, task)),
            _ => None,
        }
    }

    /// The implementation currently selected at this node (agent name or
    /// data-source name), when the node is a choice point at all.
    fn current_target(&self) -> Option<String> {
        match &self.kind {
            IrKind::AgentInvocation { agent, .. } => Some(agent.clone()),
            IrKind::DataOperator { node, .. } => match &node.op {
                DataOp::Knowledge { source } => Some(source.clone()),
                _ => Some(self.id.clone()),
            },
            IrKind::Guard { .. } => None,
        }
    }
}

/// A mid-flight tier switch applied by [`PlanIr::reoptimize_pending`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TierSwitch {
    /// The IR node whose implementation changed.
    pub node: String,
    /// Tier label before the switch.
    pub from: String,
    /// Tier label after the switch.
    pub to: String,
}

/// Maps a parametric-source name to the model tier that backs it
/// (`gpt-large` → `sim-large`, matching the runtime's source naming).
fn tier_label(target: &str) -> String {
    match target.strip_prefix("gpt-") {
        Some(suffix) => format!("sim-{suffix}"),
        None => target.to_string(),
    }
}

/// The unified plan IR: one DAG reaching the optimizer and the coordinator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanIr {
    /// Unique task id (from the lowered task plan).
    pub task_id: String,
    /// The user utterance this plan serves.
    pub goal: String,
    /// Nodes in insertion order: agent nodes in task-plan order, then
    /// spliced data operators and guards.
    pub nodes: Vec<IrNode>,
    /// Objective the plan was optimized for.
    pub objective: Objective,
    /// QoS constraints the plan must satisfy.
    pub constraints: QosConstraints,
}

impl PlanIr {
    /// Lowers a task plan into IR without type information: ports default
    /// to `Any`, `FromData` bindings stay unresolved.
    pub fn lower(plan: &TaskPlan) -> PlanIr {
        Self::lower_with_ports(plan, |_, _| None)
    }

    /// Lowers a task plan into IR with port types filled from the agent
    /// registry's specs (unknown agents fall back to `Any`-typed ports).
    pub fn lower_typed(plan: &TaskPlan, registry: &AgentRegistry) -> PlanIr {
        Self::lower_with_ports(plan, |agent, _| registry.get_spec(agent).ok())
    }

    fn lower_with_ports(
        plan: &TaskPlan,
        spec_of: impl Fn(&str, &str) -> Option<blueprint_agents::AgentSpec>,
    ) -> PlanIr {
        let nodes = plan
            .nodes
            .iter()
            .map(|n| {
                let spec = spec_of(&n.agent, &n.id);
                let in_ports = match &spec {
                    Some(s) => s
                        .inputs
                        .iter()
                        .map(|p| IrPort {
                            name: p.name.clone(),
                            dtype: p.data_type,
                        })
                        .collect(),
                    None => n
                        .inputs
                        .keys()
                        .map(|name| IrPort {
                            name: name.clone(),
                            dtype: DataType::Any,
                        })
                        .collect(),
                };
                let out_ports = spec
                    .map(|s| {
                        s.outputs
                            .iter()
                            .map(|p| IrPort {
                                name: p.name.clone(),
                                dtype: p.data_type,
                            })
                            .collect()
                    })
                    .unwrap_or_default();
                let inputs = n
                    .inputs
                    .iter()
                    .map(|(slot, b)| {
                        let binding = match b {
                            InputBinding::FromUser => IrBinding::FromUser,
                            InputBinding::FromNode { node, output } => IrBinding::FromNode {
                                node: node.clone(),
                                output: output.clone(),
                            },
                            InputBinding::Literal(v) => IrBinding::Literal(v.clone()),
                            InputBinding::FromData { query } => IrBinding::FromData {
                                query: query.clone(),
                            },
                        };
                        (slot.clone(), binding)
                    })
                    .collect();
                IrNode {
                    id: n.id.clone(),
                    kind: IrKind::AgentInvocation {
                        agent: n.agent.clone(),
                        task: n.task.clone(),
                    },
                    inputs,
                    in_ports,
                    out_ports,
                    qos: IrQos::fixed(n.profile),
                }
            })
            .collect();
        PlanIr {
            task_id: plan.task_id.clone(),
            goal: plan.utterance.clone(),
            nodes,
            objective: Objective::balanced(),
            constraints: QosConstraints::none(),
        }
    }

    /// Lowers a standalone data plan into IR (one `DataOperator` node per
    /// operator, no owner). Used by the Fig 7 regenerator to show that both
    /// figures are one artifact.
    pub fn from_data_plan(plan: &DataPlan) -> PlanIr {
        let nodes = plan.nodes.iter().map(|n| data_ir_node(n, None)).collect();
        PlanIr {
            task_id: "data".into(),
            goal: plan.request.clone(),
            nodes,
            objective: Objective::balanced(),
            constraints: QosConstraints::none(),
        }
    }

    /// Lowers a task plan and splices a data plan into every `FromData`
    /// binding via the data planner's routing, annotating `Knowledge`
    /// operators with their interchangeable parametric sources. The
    /// resulting IR carries the planner's objective and constraints so the
    /// optimizer and coordinator work from the same QoS contract.
    pub fn lower_spliced(plan: &TaskPlan, dp: &DataPlanner) -> Result<PlanIr> {
        let mut ir = Self::lower(plan);
        ir.objective = dp.objective();
        ir.constraints = dp.constraints();
        // Agent nodes in insertion order, slots in BTreeMap order: the
        // splice order (and therefore data-node id allocation) is
        // deterministic.
        let targets: Vec<(String, String, String)> = ir
            .nodes
            .iter()
            .flat_map(|n| {
                n.inputs.iter().filter_map(|(slot, b)| match b {
                    IrBinding::FromData { query } => {
                        Some((n.id.clone(), slot.clone(), query.clone()))
                    }
                    _ => None,
                })
            })
            .collect();
        for (owner, slot, query) in targets {
            let dplan = dp.plan_for_binding(&query, &plan.utterance)?;
            let alternatives = dp.knowledge_alternatives(&dplan);
            ir.splice(&owner, &slot, &dplan, &alternatives)?;
        }
        Ok(ir)
    }

    /// Inlines `dplan` under the `(owner, slot)` binding, which must
    /// currently be `FromData`. `alternatives` lists, per data-plan node id,
    /// the interchangeable sources the optimizer may swap in.
    pub fn splice(
        &mut self,
        owner: &str,
        slot: &str,
        dplan: &DataPlan,
        alternatives: &[(String, Vec<Candidate<String>>)],
    ) -> Result<()> {
        dplan.validate()?;
        let node = self
            .nodes
            .iter_mut()
            .find(|n| n.id == owner)
            .ok_or_else(|| PlanError::InvalidPlan(format!("splice owner {owner} not in IR")))?;
        let binding = node.inputs.get_mut(slot).ok_or_else(|| {
            PlanError::InvalidPlan(format!("splice slot {owner}.{slot} not bound"))
        })?;
        let query = match binding {
            IrBinding::FromData { query } => query.clone(),
            other => {
                return Err(PlanError::InvalidPlan(format!(
                    "splice slot {owner}.{slot} is {other:?}, expected FromData"
                )))
            }
        };
        *binding = IrBinding::Spliced {
            output: dplan.output.clone(),
            query,
        };
        for dn in &dplan.nodes {
            let mut ir_node = data_ir_node(dn, Some((owner.to_string(), slot.to_string())));
            if let Some((_, options)) = alternatives.iter().find(|(id, _)| id == &dn.id) {
                ir_node.qos.alternatives = options
                    .iter()
                    .map(|c| IrAlternative {
                        tier: tier_label(&c.item),
                        target: c.item.clone(),
                        profile: c.profile,
                    })
                    .collect();
            }
            self.nodes.push(ir_node);
        }
        Ok(())
    }

    /// Appends a guard node protecting `node` (resilience semantics carried
    /// in the IR: fallback substitution and/or skippability).
    pub fn annotate_guard(
        &mut self,
        protects: &str,
        fallback: Option<String>,
        accuracy_penalty: f64,
        skippable: bool,
    ) {
        let id = format!(
            "g{}",
            self.nodes
                .iter()
                .filter(|n| matches!(n.kind, IrKind::Guard { .. }))
                .count()
                + 1
        );
        self.nodes.push(IrNode {
            id,
            kind: IrKind::Guard {
                protects: protects.to_string(),
                fallback,
                accuracy_penalty,
                skippable,
            },
            inputs: BTreeMap::new(),
            in_ports: Vec::new(),
            out_ports: Vec::new(),
            qos: IrQos::fixed(CostProfile::FREE),
        });
    }

    /// Node lookup.
    pub fn node(&self, id: &str) -> Option<&IrNode> {
        self.nodes.iter().find(|n| n.id == id)
    }

    /// Agent-invocation nodes in insertion order.
    pub fn agent_nodes(&self) -> impl Iterator<Item = &IrNode> {
        self.nodes.iter().filter(|n| n.is_agent())
    }

    /// The guard annotating `node`, if any.
    pub fn guard_for(&self, node: &str) -> Option<&IrNode> {
        self.nodes
            .iter()
            .find(|n| matches!(&n.kind, IrKind::Guard { protects, .. } if protects == node))
    }

    /// Dataflow edges between agent nodes (from `FromNode` bindings).
    pub fn edges(&self) -> Vec<PlanEdge> {
        let mut edges = Vec::new();
        for n in self.agent_nodes() {
            for binding in n.inputs.values() {
                if let IrBinding::FromNode { node, .. } = binding {
                    edges.push(PlanEdge {
                        from: node.clone(),
                        to: n.id.clone(),
                    });
                }
            }
        }
        edges
    }

    /// Topological order of *agent* node ids; errors on cycles. Mirrors
    /// [`TaskPlan::topo_order`] exactly (insertion order breaks ties), so a
    /// lowered plan schedules identically to its source.
    pub fn topo_order(&self) -> Result<Vec<String>> {
        let agents: Vec<&IrNode> = self.agent_nodes().collect();
        let position: HashMap<&str, usize> = agents
            .iter()
            .enumerate()
            .map(|(i, n)| (n.id.as_str(), i))
            .collect();
        let mut indegree: HashMap<&str, usize> =
            agents.iter().map(|n| (n.id.as_str(), 0)).collect();
        let mut adjacency: HashMap<&str, Vec<&str>> = HashMap::new();
        for e in self.edges() {
            let from = *position
                .get_key_value(e.from.as_str())
                .map(|(k, _)| k)
                .ok_or_else(|| PlanError::InvalidPlan(format!("unknown edge source {}", e.from)))?;
            let to = *position
                .get_key_value(e.to.as_str())
                .map(|(k, _)| k)
                .expect("edge target exists by construction");
            adjacency.entry(from).or_default().push(to);
            *indegree.get_mut(to).expect("indegree entry") += 1;
        }
        let mut ready: Vec<&str> = agents
            .iter()
            .filter(|n| indegree[n.id.as_str()] == 0)
            .map(|n| n.id.as_str())
            .collect();
        ready.sort_by_key(|id| position[id]);
        let mut order = Vec::with_capacity(agents.len());
        while !ready.is_empty() {
            let id = ready.remove(0);
            order.push(id.to_string());
            for &next in adjacency.get(id).into_iter().flatten() {
                let d = indegree.get_mut(next).expect("indegree entry");
                *d -= 1;
                if *d == 0 {
                    let pos = ready
                        .binary_search_by_key(&position[next], |r| position[r])
                        .unwrap_or_else(|i| i);
                    ready.insert(pos, next);
                }
            }
        }
        if order.len() != agents.len() {
            return Err(PlanError::InvalidPlan("plan contains a cycle".into()));
        }
        Ok(order)
    }

    /// Validates the whole IR: unique ids, known references, acyclic agent
    /// DAG, spliced bindings resolvable, guards protecting real nodes.
    pub fn validate(&self) -> Result<()> {
        let mut ids = HashSet::new();
        for n in &self.nodes {
            if !ids.insert(n.id.as_str()) {
                return Err(PlanError::InvalidPlan(format!(
                    "duplicate node id: {}",
                    n.id
                )));
            }
            if let IrKind::DataOperator { node, .. } = &n.kind {
                if node.id != n.id {
                    return Err(PlanError::InvalidPlan(format!(
                        "data operator {} embeds mismatched node {}",
                        n.id, node.id
                    )));
                }
            }
        }
        let agent_ids: HashSet<&str> = self.agent_nodes().map(|n| n.id.as_str()).collect();
        for n in self.agent_nodes() {
            for (slot, b) in &n.inputs {
                match b {
                    IrBinding::FromNode { node, .. } => {
                        if !agent_ids.contains(node.as_str()) {
                            return Err(PlanError::InvalidPlan(format!(
                                "node {} references unknown node {node}",
                                n.id
                            )));
                        }
                        if node == &n.id {
                            return Err(PlanError::InvalidPlan(format!(
                                "node {} depends on itself",
                                n.id
                            )));
                        }
                    }
                    IrBinding::Spliced { output, .. } => {
                        let sub = self.data_subplan(&n.id, slot).ok_or_else(|| {
                            PlanError::InvalidPlan(format!(
                                "spliced binding {}.{slot} has no data nodes",
                                n.id
                            ))
                        })?;
                        if sub.node(output).is_none() {
                            return Err(PlanError::InvalidPlan(format!(
                                "spliced binding {}.{slot} output {output} not in subplan",
                                n.id
                            )));
                        }
                    }
                    _ => {}
                }
            }
        }
        for n in &self.nodes {
            if let IrKind::Guard { protects, .. } = &n.kind {
                if !ids.contains(protects.as_str()) {
                    return Err(PlanError::InvalidPlan(format!(
                        "guard {} protects unknown node {protects}",
                        n.id
                    )));
                }
            }
        }
        self.topo_order().map(|_| ())
    }

    /// Projected QoS of the plan: composes the *agent* nodes in insertion
    /// order, exactly like [`TaskPlan::projected_profile`]. Data operators
    /// are charged from actuals when their owner resolves inputs — the same
    /// accounting as the legacy path, so lowered plans budget identically.
    pub fn projected_profile(&self) -> CostProfile {
        self.agent_nodes()
            .fold(CostProfile::FREE, |acc, n| acc.then(&n.qos.profile))
    }

    /// Reconstructs the data plan spliced under `(owner, slot)`:
    /// the owned operators in insertion order with the recorded output.
    /// Byte-identical to the plan that was spliced in.
    pub fn data_subplan(&self, owner: &str, slot: &str) -> Option<DataPlan> {
        let output = match self.node(owner)?.inputs.get(slot)? {
            IrBinding::Spliced { output, query: _ } => output.clone(),
            _ => return None,
        };
        let request = match self.node(owner)?.inputs.get(slot)? {
            IrBinding::Spliced { query, .. } => query.clone(),
            _ => unreachable!("matched Spliced above"),
        };
        let nodes: Vec<DataNode> = self
            .nodes
            .iter()
            .filter_map(|n| match &n.kind {
                IrKind::DataOperator {
                    node,
                    owner: Some((o, s)),
                } if o == owner && s == slot => Some(node.clone()),
                _ => None,
            })
            .collect();
        if nodes.is_empty() {
            return None;
        }
        Some(DataPlan {
            request,
            nodes,
            output,
        })
    }

    /// Every optimizable position in the IR as a [`ChoicePoint`]: nodes
    /// with alternatives offer them all; fixed nodes offer exactly their
    /// current profile, so the composed feasibility check covers the whole
    /// plan. Guards are free and excluded.
    pub fn choice_points(&self) -> Vec<ChoicePoint<String>> {
        self.nodes
            .iter()
            .filter_map(|n| {
                let current = n.current_target()?;
                let options = if n.qos.alternatives.is_empty() {
                    vec![Candidate::new(current, n.qos.profile)]
                } else {
                    n.qos
                        .alternatives
                        .iter()
                        .map(|a| Candidate::new(a.target.clone(), a.profile))
                        .collect()
                };
                Some(ChoicePoint::new(n.id.clone(), options))
            })
            .collect()
    }

    /// Runs the optimizer's joint Pareto-pruned search over every choice
    /// point — model tiers on LLM nodes and source choices on data
    /// operators in one space — and applies the winning assignment.
    /// Returns the composed QoS of the chosen plan, or `None` when no
    /// feasible assignment exists (the IR is left unchanged).
    pub fn optimize(
        &mut self,
        objective: Objective,
        constraints: &QosConstraints,
    ) -> Option<CostProfile> {
        let points = self.choice_points();
        let selection = optimize_unified(&points, objective, constraints)?;
        for (point, &pick) in points.iter().zip(&selection.assignment) {
            let target = &point.options[pick].item;
            self.apply_alternative(&point.node, target);
        }
        self.objective = objective;
        self.constraints = *constraints;
        Some(selection.composed)
    }

    /// Re-selects the implementation of data operators owned by
    /// still-pending agent nodes, under the given objective and (typically
    /// tightened) constraints. Used by the coordinator's bounded mid-flight
    /// re-optimization; nodes already executed are never touched. Returns
    /// the switches applied, in insertion order.
    pub fn reoptimize_pending(
        &mut self,
        pending: &HashSet<String>,
        objective: Objective,
        constraints: &QosConstraints,
    ) -> Vec<TierSwitch> {
        let mut plans: Vec<(usize, String)> = Vec::new();
        for (i, n) in self.nodes.iter().enumerate() {
            let owned_by_pending = matches!(
                &n.kind,
                IrKind::DataOperator { owner: Some((o, _)), .. } if pending.contains(o)
            );
            if !owned_by_pending || n.qos.alternatives.len() < 2 {
                continue;
            }
            let cands: Vec<Candidate<String>> = n
                .qos
                .alternatives
                .iter()
                .map(|a| Candidate::new(a.target.clone(), a.profile))
                .collect();
            let Some(idx) = select(&cands, objective, constraints) else {
                continue;
            };
            let target = cands[idx].item.clone();
            if Some(&target) != n.current_target().as_ref() {
                plans.push((i, target));
            }
        }
        let mut switches = Vec::new();
        for (i, target) in plans {
            let id = self.nodes[i].id.clone();
            let from = self.nodes[i]
                .qos
                .tier
                .clone()
                .or_else(|| self.nodes[i].current_target().map(|t| tier_label(&t)))
                .unwrap_or_default();
            if self.apply_alternative(&id, &target) {
                switches.push(TierSwitch {
                    node: id,
                    from,
                    to: tier_label(&target),
                });
            }
        }
        switches
    }

    /// Swaps a node's implementation to the alternative named `target`.
    /// Returns false when the node or alternative doesn't exist (or the
    /// target is already selected with no alternative entry).
    pub fn apply_alternative(&mut self, node_id: &str, target: &str) -> bool {
        let Some(n) = self.nodes.iter_mut().find(|n| n.id == node_id) else {
            return false;
        };
        if n.current_target().as_deref() == Some(target) {
            return true;
        }
        let Some(alt) = n
            .qos
            .alternatives
            .iter()
            .find(|a| a.target == target)
            .cloned()
        else {
            return false;
        };
        match &mut n.kind {
            IrKind::AgentInvocation { agent, .. } => *agent = alt.target.clone(),
            IrKind::DataOperator { node, .. } => {
                if let DataOp::Knowledge { source } = &mut node.op {
                    *source = alt.target.clone();
                }
                node.estimate = CostEstimate {
                    cost_units: alt.profile.cost_per_call,
                    latency_micros: alt.profile.latency_micros,
                    accuracy: alt.profile.accuracy,
                };
            }
            IrKind::Guard { .. } => return false,
        }
        n.qos.profile = alt.profile;
        n.qos.tier = Some(alt.tier);
        true
    }

    /// Renders the IR as text: agent nodes in order with their spliced data
    /// operators indented beneath, then standalone operators and guards.
    ///
    /// ```text
    /// plan-ir t1: "I am looking for a data scientist position in SF bay area."
    ///   n1 PROFILER(text ← user)
    ///   n2 JOB-MATCHER(job_seeker_data ← n1.profile, jobs ← splice(d4))
    ///     ↳ d1 q2nl("city ∈ \"sf bay area\"")
    ///     ↳ d2 knowledge[gpt-large] (question ← d1) ~tier sim-large
    ///   n3 PRESENTER(content ← n2.matches)
    ///   g1 guard n3 [skippable]
    /// ```
    pub fn render_text(&self) -> String {
        let mut out = format!("plan-ir {}: \"{}\"\n", self.task_id, self.goal);
        let render_data = |n: &IrNode, node: &DataNode, indent: &str, out: &mut String| {
            let wiring = if node.inputs.is_empty() {
                String::new()
            } else {
                let parts: Vec<String> = node
                    .inputs
                    .iter()
                    .map(|(slot, dep)| format!("{slot} ← {dep}"))
                    .collect();
                format!(" ({})", parts.join(", "))
            };
            let tier = n
                .qos
                .tier
                .as_ref()
                .map(|t| format!(" ~tier {t}"))
                .unwrap_or_default();
            out.push_str(&format!(
                "{indent}{} {}{}{}\n",
                n.id,
                node.op.detail(),
                wiring,
                tier
            ));
        };
        for n in self.agent_nodes() {
            let (agent, _) = n.agent().expect("agent node");
            let inputs: Vec<String> = n
                .inputs
                .iter()
                .map(|(p, b)| match b {
                    IrBinding::FromUser => format!("{p} ← user"),
                    IrBinding::FromNode { node, output } => format!("{p} ← {node}.{output}"),
                    IrBinding::Literal(v) => format!("{p} ← {v}"),
                    IrBinding::FromData { query } => format!("{p} ← data(\"{query}\")"),
                    IrBinding::Spliced { output, .. } => format!("{p} ← splice({output})"),
                })
                .collect();
            out.push_str(&format!(
                "  {} {}({})\n",
                n.id,
                agent.to_uppercase(),
                inputs.join(", ")
            ));
            for d in &self.nodes {
                if let IrKind::DataOperator {
                    node,
                    owner: Some((o, _)),
                } = &d.kind
                {
                    if o == &n.id {
                        render_data(d, node, "    ↳ ", &mut out);
                    }
                }
            }
        }
        for d in &self.nodes {
            if let IrKind::DataOperator { node, owner: None } = &d.kind {
                render_data(d, node, "  ", &mut out);
            }
        }
        for n in &self.nodes {
            if let IrKind::Guard {
                protects,
                fallback,
                skippable,
                ..
            } = &n.kind
            {
                let mut flags = Vec::new();
                if let Some(f) = fallback {
                    flags.push(format!("fallback={f}"));
                }
                if *skippable {
                    flags.push("skippable".to_string());
                }
                out.push_str(&format!(
                    "  {} guard {protects} [{}]\n",
                    n.id,
                    flags.join(", ")
                ));
            }
        }
        out
    }
}

/// Converts one data-plan node into its IR form.
fn data_ir_node(dn: &DataNode, owner: Option<(String, String)>) -> IrNode {
    let inputs = dn
        .inputs
        .iter()
        .map(|(slot, dep)| {
            (
                slot.clone(),
                IrBinding::FromNode {
                    node: dep.clone(),
                    output: "value".to_string(),
                },
            )
        })
        .collect();
    let out_dtype = match &dn.op {
        DataOp::SqlTemplate { .. } | DataOp::DocSearch { .. } => DataType::Table,
        DataOp::Knowledge { .. } | DataOp::GraphExpand { .. } => DataType::List,
        DataOp::Extract => DataType::Json,
        DataOp::Q2NL { .. } | DataOp::Summarize => DataType::Text,
        DataOp::Literal { .. } => DataType::Any,
    };
    let tier = match &dn.op {
        DataOp::Knowledge { source } => Some(tier_label(source)),
        _ => None,
    };
    IrNode {
        id: dn.id.clone(),
        kind: IrKind::DataOperator {
            node: dn.clone(),
            owner,
        },
        inputs,
        in_ports: dn
            .inputs
            .iter()
            .map(|(slot, _)| IrPort {
                name: slot.clone(),
                dtype: DataType::Any,
            })
            .collect(),
        out_ports: vec![IrPort {
            name: "value".to_string(),
            dtype: out_dtype,
        }],
        qos: IrQos {
            profile: CostProfile::new(
                dn.estimate.cost_units,
                dn.estimate.latency_micros,
                dn.estimate.accuracy,
            ),
            tier,
            alternatives: Vec::new(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use serde_json::json;

    use blueprint_datastore::{GraphSource, PropertyGraph, RelationalDb, RelationalSource};
    use blueprint_llmsim::{ModelProfile, ParametricSource, SimLlm};
    use blueprint_registry::DataRegistry;

    use crate::plan::PlanNode;

    const RUNNING_EXAMPLE: &str = "I am looking for a data scientist position in SF bay area.";

    fn chain() -> TaskPlan {
        let mut plan = TaskPlan::new("t1", RUNNING_EXAMPLE);
        let mut n1 = PlanNode {
            id: "n1".into(),
            agent: "profiler".into(),
            task: "collect the profile".into(),
            inputs: BTreeMap::new(),
            profile: CostProfile::new(1.0, 1_000, 0.9),
        };
        n1.inputs.insert("text".into(), InputBinding::FromUser);
        let mut n2 = PlanNode {
            id: "n2".into(),
            agent: "job-matcher".into(),
            task: "match jobs".into(),
            inputs: BTreeMap::new(),
            profile: CostProfile::new(2.0, 2_000, 0.95),
        };
        n2.inputs.insert(
            "job_seeker_data".into(),
            InputBinding::FromNode {
                node: "n1".into(),
                output: "profile".into(),
            },
        );
        n2.inputs.insert(
            "jobs".into(),
            InputBinding::FromData {
                query: "available job listings".into(),
            },
        );
        let mut plan_nodes = vec![n1, n2];
        for n in plan_nodes.drain(..) {
            plan.push(n);
        }
        plan
    }

    fn jobs_db() -> Arc<RelationalDb> {
        let db = Arc::new(RelationalDb::new());
        db.execute("CREATE TABLE jobs (id INT, title TEXT, city TEXT)")
            .unwrap();
        db.execute(
            "INSERT INTO jobs VALUES \
             (1, 'data scientist', 'san francisco'), \
             (2, 'machine learning engineer', 'oakland'), \
             (3, 'data scientist', 'new york')",
        )
        .unwrap();
        db
    }

    fn taxonomy() -> Arc<PropertyGraph> {
        let g = Arc::new(PropertyGraph::new());
        for (id, name) in [
            ("data-scientist", "data scientist"),
            ("machine-learning-engineer", "machine learning engineer"),
        ] {
            g.add_node(id, "title", json!({"name": name})).unwrap();
        }
        g.add_edge("machine-learning-engineer", "data-scientist", "related_to")
            .unwrap();
        g
    }

    fn data_planner() -> DataPlanner {
        let llm = Arc::new(SimLlm::new(ModelProfile::large()));
        let mut dp = DataPlanner::new(Arc::new(DataRegistry::new()), Arc::clone(&llm));
        dp.add_source(Arc::new(RelationalSource::new("hr-db", jobs_db())));
        dp.add_source(Arc::new(GraphSource::new("title-taxonomy", taxonomy())));
        dp.add_source(Arc::new(ParametricSource::new("gpt-large", llm)));
        dp.add_source(Arc::new(ParametricSource::new(
            "gpt-small",
            Arc::new(SimLlm::new(ModelProfile::small())),
        )));
        dp
    }

    #[test]
    fn lowering_preserves_structure_and_profile() {
        let plan = chain();
        let ir = PlanIr::lower(&plan);
        ir.validate().unwrap();
        assert_eq!(ir.topo_order().unwrap(), plan.topo_order().unwrap());
        let a = ir.projected_profile();
        let b = plan.projected_profile();
        assert_eq!(a.cost_per_call.to_bits(), b.cost_per_call.to_bits());
        assert_eq!(a.latency_micros, b.latency_micros);
        assert_eq!(a.accuracy.to_bits(), b.accuracy.to_bits());
        assert_eq!(ir.agent_nodes().count(), 2);
    }

    #[test]
    fn splice_rewires_binding_and_reconstructs_byte_identical_subplan() {
        let plan = chain();
        let dp = data_planner();
        let dplan = dp
            .plan_for_binding("available job listings", RUNNING_EXAMPLE)
            .unwrap();
        let mut ir = PlanIr::lower(&plan);
        ir.splice("n2", "jobs", &dplan, &dp.knowledge_alternatives(&dplan))
            .unwrap();
        ir.validate().unwrap();
        assert!(matches!(
            ir.node("n2").unwrap().inputs.get("jobs"),
            Some(IrBinding::Spliced { .. })
        ));
        let back = ir.data_subplan("n2", "jobs").unwrap();
        assert_eq!(back.nodes, dplan.nodes);
        assert_eq!(back.output, dplan.output);
        // Knowledge node carries both parametric tiers as alternatives.
        let know = ir
            .nodes
            .iter()
            .find(|n| {
                matches!(&n.kind, IrKind::DataOperator { node, .. }
                if matches!(node.op, DataOp::Knowledge { .. }))
            })
            .unwrap();
        let tiers: Vec<&str> = know
            .qos
            .alternatives
            .iter()
            .map(|a| a.tier.as_str())
            .collect();
        assert_eq!(tiers, ["sim-large", "sim-small"]);
    }

    #[test]
    fn lower_spliced_handles_every_from_data_binding() {
        let plan = chain();
        let dp = data_planner();
        let ir = PlanIr::lower_spliced(&plan, &dp).unwrap();
        ir.validate().unwrap();
        assert!(ir.nodes.iter().any(
            |n| matches!(&n.kind, IrKind::DataOperator { owner: Some((o, s)), .. }
                if o == "n2" && s == "jobs")
        ));
        assert!(!ir.agent_nodes().any(|n| n
            .inputs
            .values()
            .any(|b| matches!(b, IrBinding::FromData { .. }))));
    }

    #[test]
    fn splice_requires_from_data_binding() {
        let plan = chain();
        let dp = data_planner();
        let dplan = dp
            .plan_for_binding("available job listings", RUNNING_EXAMPLE)
            .unwrap();
        let mut ir = PlanIr::lower(&plan);
        assert!(ir.splice("n1", "text", &dplan, &[]).is_err());
        assert!(ir.splice("ghost", "jobs", &dplan, &[]).is_err());
        assert!(ir.splice("n2", "nope", &dplan, &[]).is_err());
    }

    #[test]
    fn typed_lowering_fills_ports_from_specs() {
        use blueprint_agents::{AgentSpec, ParamSpec};
        let registry = AgentRegistry::new();
        registry
            .register(
                AgentSpec::new("profiler", "collects profiles")
                    .with_input(ParamSpec::required("text", "raw text", DataType::Text))
                    .with_output(ParamSpec::required("profile", "profile", DataType::Json)),
            )
            .unwrap();
        let ir = PlanIr::lower_typed(&chain(), &registry);
        let n1 = ir.node("n1").unwrap();
        assert_eq!(n1.in_ports[0].dtype, DataType::Text);
        assert_eq!(n1.out_ports[0].dtype, DataType::Json);
        // Unknown agent falls back to Any-typed ports from its bindings.
        let n2 = ir.node("n2").unwrap();
        assert!(n2.in_ports.iter().all(|p| p.dtype == DataType::Any));
    }

    #[test]
    fn unified_optimize_switches_source_under_accuracy_floor() {
        let plan = chain();
        let mut dp = data_planner();
        dp.set_objective(Objective::MinCost);
        let mut ir = PlanIr::lower_spliced(&plan, &dp).unwrap();
        // Cost-min picks the small tier...
        let composed = ir.optimize(Objective::MinCost, &QosConstraints::none());
        assert!(composed.is_some());
        let know = |ir: &PlanIr| {
            ir.nodes
                .iter()
                .find_map(|n| match &n.kind {
                    IrKind::DataOperator { node, .. } => match &node.op {
                        DataOp::Knowledge { source } => Some(source.clone()),
                        _ => None,
                    },
                    _ => None,
                })
                .unwrap()
        };
        assert_eq!(know(&ir), "gpt-small");
        // ...an accuracy floor over the *composed* plan forces the large
        // tier back in (agent nodes 0.9·0.95 × data accuracies).
        let floor = QosConstraints::none().with_min_accuracy(0.82);
        ir.optimize(Objective::MinCost, &floor).unwrap();
        assert_eq!(know(&ir), "gpt-large");
        assert_eq!(
            ir.node("d2").unwrap().qos.tier.as_deref(),
            Some("sim-large")
        );
    }

    #[test]
    fn reoptimize_pending_only_touches_pending_owners() {
        let plan = chain();
        let dp = data_planner();
        let mut ir = PlanIr::lower_spliced(&plan, &dp).unwrap();
        // Pin the knowledge operator to the large tier so the downgrade is
        // observable regardless of what the planner picked by default.
        let know_id = ir
            .nodes
            .iter()
            .find_map(|n| match &n.kind {
                IrKind::DataOperator { node, .. }
                    if matches!(node.op, DataOp::Knowledge { .. }) =>
                {
                    Some(n.id.clone())
                }
                _ => None,
            })
            .unwrap();
        assert!(ir.apply_alternative(&know_id, "gpt-large"));
        assert_eq!(
            ir.node(&know_id).unwrap().qos.tier.as_deref(),
            Some("sim-large")
        );
        // Under a tight latency cap the large tier is infeasible per-node.
        let tight = QosConstraints::none().with_max_latency_micros(200_000);
        // Nothing pending → nothing switches.
        let none = ir
            .clone()
            .reoptimize_pending(&HashSet::new(), Objective::MinLatency, &tight);
        assert!(none.is_empty());
        // n2 pending → its knowledge operator downgrades to the small tier.
        let pending: HashSet<String> = ["n2".to_string()].into();
        let switches = ir.reoptimize_pending(&pending, Objective::MinLatency, &tight);
        assert_eq!(switches.len(), 1);
        assert_eq!(switches[0].from, "sim-large");
        assert_eq!(switches[0].to, "sim-small");
        let sub = ir.data_subplan("n2", "jobs").unwrap();
        let know = sub
            .nodes
            .iter()
            .find(|n| matches!(n.op, DataOp::Knowledge { .. }))
            .unwrap();
        assert!(matches!(&know.op, DataOp::Knowledge { source } if source == "gpt-small"));
        // Idempotent: re-running under the same constraints is a no-op.
        assert!(ir
            .reoptimize_pending(&pending, Objective::MinLatency, &tight)
            .is_empty());
    }

    #[test]
    fn guards_render_and_validate() {
        let plan = chain();
        let mut ir = PlanIr::lower(&plan);
        ir.annotate_guard("n2", Some("matcher-lite".into()), 0.1, true);
        ir.validate().unwrap();
        assert!(ir.guard_for("n2").is_some());
        assert!(ir.guard_for("n1").is_none());
        let text = ir.render_text();
        assert!(text.contains("g1 guard n2 [fallback=matcher-lite, skippable]"));
        ir.annotate_guard("ghost", None, 0.0, false);
        assert!(ir.validate().is_err());
    }

    #[test]
    fn from_data_plan_lowers_operators() {
        let dp = data_planner();
        let dplan = dp.plan_job_query(RUNNING_EXAMPLE).unwrap();
        let ir = PlanIr::from_data_plan(&dplan);
        assert_eq!(ir.nodes.len(), dplan.nodes.len());
        assert!(ir.nodes.iter().all(|n| !n.is_agent()));
        let text = ir.render_text();
        assert!(text.contains("knowledge[gpt-"));
        assert!(text.contains("~tier sim-"));
    }

    #[test]
    fn render_shows_splice_wiring() {
        let plan = chain();
        let dp = data_planner();
        let ir = PlanIr::lower_spliced(&plan, &dp).unwrap();
        let text = ir.render_text();
        assert!(text.contains("n2 JOB-MATCHER"));
        assert!(text.contains("jobs ← splice("));
        assert!(text.contains("↳"));
        assert!(text.contains("sql[hr-db]"));
    }

    #[test]
    fn serde_round_trip() {
        let plan = chain();
        let dp = data_planner();
        let mut ir = PlanIr::lower_spliced(&plan, &dp).unwrap();
        ir.annotate_guard("n1", None, 0.0, true);
        let json = serde_json::to_value(&ir).unwrap();
        let back: PlanIr = serde_json::from_value(json).unwrap();
        assert_eq!(back, ir);
    }
}
