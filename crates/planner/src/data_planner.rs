//! The data planner (§V-G): plans and executes data retrieval across
//! multi-modal sources under QoS constraints.

use std::collections::HashMap;
use std::sync::Arc;

use serde_json::{json, Value};

use blueprint_agents::CostProfile;
use blueprint_datastore::{CostEstimate, DataSource, RelationalDb, SourceQuery};
use blueprint_llmsim::SimLlm;
use blueprint_optimizer::{select, Candidate, Objective, QosConstraints};
use blueprint_registry::DataRegistry;

use crate::data_plan::{DataNode, DataOp, DataPlan};
use crate::error::PlanError;
use crate::Result;

/// The result of executing a data plan.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutedPlan {
    /// The output node's value.
    pub value: Value,
    /// Actual QoS incurred (virtual time).
    pub actual: CostProfile,
    /// Per-node trace: `(node id, operator name, rows produced)`.
    pub trace: Vec<(String, String, usize)>,
}

/// Plans and executes data operations over registered sources.
pub struct DataPlanner {
    registry: Arc<DataRegistry>,
    sources: HashMap<String, Arc<dyn DataSource>>,
    llm: Arc<SimLlm>,
    objective: Objective,
    constraints: QosConstraints,
    counter: std::sync::atomic::AtomicU64,
}

impl DataPlanner {
    /// Creates a planner over a data registry with no sources attached.
    pub fn new(registry: Arc<DataRegistry>, llm: Arc<SimLlm>) -> Self {
        DataPlanner {
            registry,
            sources: HashMap::new(),
            llm,
            objective: Objective::balanced(),
            constraints: QosConstraints::none(),
            counter: std::sync::atomic::AtomicU64::new(1),
        }
    }

    /// Attaches a data source (its `name()` keys the plan's `source` refs).
    pub fn add_source(&mut self, source: Arc<dyn DataSource>) {
        self.sources.insert(source.name().to_string(), source);
    }

    /// Sets the optimization objective.
    pub fn set_objective(&mut self, objective: Objective) {
        self.objective = objective;
    }

    /// Sets the QoS constraints future plans must satisfy.
    pub fn set_constraints(&mut self, constraints: QosConstraints) {
        self.constraints = constraints;
    }

    /// The data registry.
    pub fn registry(&self) -> &Arc<DataRegistry> {
        &self.registry
    }

    /// The planner's optimization objective.
    pub fn objective(&self) -> Objective {
        self.objective
    }

    /// The planner's QoS constraints.
    pub fn constraints(&self) -> QosConstraints {
        self.constraints
    }

    /// Names of attached sources, sorted.
    pub fn source_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.sources.keys().cloned().collect();
        names.sort();
        names
    }

    fn next_id(&self) -> String {
        format!(
            "d{}",
            self.counter
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        )
    }

    fn source(&self, name: &str) -> Result<&Arc<dyn DataSource>> {
        self.sources
            .get(name)
            .ok_or_else(|| PlanError::NoSourceFor(name.to_string()))
    }

    fn sources_by_modality(&self, modality: &str) -> Vec<&Arc<dyn DataSource>> {
        let mut out: Vec<&Arc<dyn DataSource>> = self
            .sources
            .values()
            .filter(|s| s.modality() == modality)
            .collect();
        out.sort_by(|a, b| a.name().cmp(b.name()));
        out
    }

    /// All parametric sources able to answer `question`, with their QoS
    /// estimates, sorted by source name. These are the interchangeable model
    /// tiers the unified plan IR exposes as alternatives on `Knowledge`
    /// operators.
    pub fn parametric_candidates(&self, question: &str) -> Vec<Candidate<String>> {
        let query = SourceQuery::Knowledge(question.to_string());
        self.sources_by_modality("parametric")
            .into_iter()
            .map(|s| {
                let est = s.estimate(&query);
                Candidate::new(
                    s.name().to_string(),
                    CostProfile::new(est.cost_units, est.latency_micros, est.accuracy),
                )
            })
            .collect()
    }

    /// Per-`Knowledge`-node alternatives in `plan`: for every knowledge
    /// operator, the parametric sources that could answer its question
    /// (recovered from the upstream `Q2NL` or `Literal` node) with their
    /// estimates. Returns `(node id, candidates)` in plan order.
    pub fn knowledge_alternatives(&self, plan: &DataPlan) -> Vec<(String, Vec<Candidate<String>>)> {
        plan.nodes
            .iter()
            .filter(|n| matches!(n.op, DataOp::Knowledge { .. }))
            .filter_map(|n| {
                let (_, dep) = n.inputs.iter().find(|(slot, _)| slot == "question")?;
                let question = match &plan.node(dep)?.op {
                    DataOp::Q2NL { fragment } => q2nl(fragment),
                    DataOp::Literal { value } => value.as_str()?.to_string(),
                    _ => return None,
                };
                Some((n.id.clone(), self.parametric_candidates(&question)))
            })
            .collect()
    }

    /// Picks the best parametric source for a knowledge question under the
    /// planner's objective and constraints — the optimizer choosing among
    /// model tiers (§V-G).
    fn choose_parametric(&self, question: &str) -> Result<(String, CostEstimate)> {
        let candidates = self.parametric_candidates(question);
        if candidates.is_empty() {
            return Err(PlanError::NoSourceFor(format!("knowledge: {question}")));
        }
        let idx = select(&candidates, self.objective, &self.constraints).ok_or_else(|| {
            PlanError::Infeasible(format!(
                "no parametric source satisfies the QoS constraints for: {question}"
            ))
        })?;
        let chosen = &candidates[idx];
        Ok((
            chosen.item.clone(),
            CostEstimate {
                cost_units: chosen.profile.cost_per_call,
                latency_micros: chosen.profile.latency_micros,
                accuracy: chosen.profile.accuracy,
            },
        ))
    }

    /// Plans the Fig 7 decomposition for a job query like
    /// "data scientist position in sf bay area":
    ///
    /// 1. extract criteria (title, location) from the utterance;
    /// 2. if the location is a *region* (answerable from parametric
    ///    knowledge), inject `Q2NL` → `Knowledge` to obtain its cities;
    /// 3. expand the title through the graph taxonomy when available;
    /// 4. splice both lists into a relational `SELECT`.
    pub fn plan_job_query(&self, utterance: &str) -> Result<DataPlan> {
        let (criteria, _usage) = self.llm.extract_criteria(utterance);
        let mut plan = DataPlan::new(utterance);

        // Location: region → Q2NL + Knowledge; literal city → Literal list.
        let cities_node = match &criteria.location {
            Some(location) => {
                let question = format!("cities in the {location}");
                let is_region = self.llm.knowledge_base().lookup(&question).is_some();
                if is_region {
                    let q2nl_id = self.next_id();
                    plan.push(DataNode {
                        id: q2nl_id.clone(),
                        op: DataOp::Q2NL {
                            fragment: format!("city ∈ \"{location}\""),
                        },
                        inputs: vec![],
                        estimate: CostEstimate::FREE,
                    });
                    let (source, estimate) = self.choose_parametric(&question)?;
                    let know_id = self.next_id();
                    self.registry.record_usage(&source, &question).ok();
                    plan.push(DataNode {
                        id: know_id.clone(),
                        op: DataOp::Knowledge { source },
                        inputs: vec![("question".into(), q2nl_id)],
                        estimate,
                    });
                    Some(know_id)
                } else {
                    let id = self.next_id();
                    plan.push(DataNode {
                        id: id.clone(),
                        op: DataOp::Literal {
                            value: json!([location]),
                        },
                        inputs: vec![],
                        estimate: CostEstimate::FREE,
                    });
                    Some(id)
                }
            }
            None => None,
        };

        // Title: expand through the graph taxonomy when available.
        let titles_node = match &criteria.title {
            Some(title) => {
                let node_id = slugify(title);
                let graph = self.sources_by_modality("graph").into_iter().next();
                let id = self.next_id();
                match graph {
                    Some(g)
                        if g.query(&SourceQuery::GraphRelated {
                            node: node_id.clone(),
                            edge_type: None,
                            depth: 1,
                        })
                        .is_ok() =>
                    {
                        let estimate = g.estimate(&SourceQuery::GraphRelated {
                            node: node_id.clone(),
                            edge_type: None,
                            depth: 1,
                        });
                        self.registry.record_usage(g.name(), title).ok();
                        plan.push(DataNode {
                            id: id.clone(),
                            op: DataOp::GraphExpand {
                                source: g.name().to_string(),
                                node: node_id,
                                depth: 1,
                            },
                            inputs: vec![],
                            estimate,
                        });
                    }
                    _ => {
                        plan.push(DataNode {
                            id: id.clone(),
                            op: DataOp::Literal {
                                value: json!([title]),
                            },
                            inputs: vec![],
                            estimate: CostEstimate::FREE,
                        });
                    }
                }
                Some(id)
            }
            None => None,
        };

        // Final relational select.
        let relational = self
            .sources_by_modality("relational")
            .into_iter()
            .next()
            .ok_or_else(|| PlanError::NoSourceFor("relational jobs data".into()))?;
        let mut template = "SELECT * FROM jobs".to_string();
        let mut conjuncts = Vec::new();
        let mut inputs = Vec::new();
        if let Some(c) = cities_node {
            conjuncts.push("city IN ({cities})".to_string());
            inputs.push(("cities".to_string(), c));
        }
        if let Some(t) = titles_node {
            conjuncts.push("title IN ({titles})".to_string());
            inputs.push(("titles".to_string(), t));
        }
        if !conjuncts.is_empty() {
            template.push_str(" WHERE ");
            template.push_str(&conjuncts.join(" AND "));
        }
        let estimate = relational.estimate(&SourceQuery::Sql(template.clone()));
        self.registry
            .record_usage(relational.name(), utterance)
            .ok();
        plan.push(DataNode {
            id: self.next_id(),
            op: DataOp::SqlTemplate {
                source: relational.name().to_string(),
                template,
            },
            inputs,
            estimate,
        });
        plan.validate()?;
        Ok(plan)
    }

    /// The *direct NL2Q* baseline the paper argues "may not always work"
    /// (§V-G): translate the whole question into one SQL query with no
    /// decomposition. Table schemas and a sampled value dictionary come from
    /// the relational database itself (data-aware translation).
    pub fn plan_nl2q_direct(
        &self,
        question: &str,
        db: &RelationalDb,
        source_name: &str,
    ) -> Result<DataPlan> {
        let tables: Vec<blueprint_llmsim::nl2sql::TableSchema> = db
            .table_names()
            .iter()
            .map(|t| {
                let schema = db.schema_of(t).expect("table exists");
                blueprint_llmsim::nl2sql::TableSchema {
                    name: t.clone(),
                    columns: schema
                        .columns
                        .iter()
                        .map(|c| (c.name.clone(), c.ctype.name().to_lowercase()))
                        .collect(),
                }
            })
            .collect();
        let values = sample_values(db);
        let (sql, _usage) = self.llm.nl_to_sql(question, &tables, &values);
        let sql = sql.ok_or_else(|| PlanError::NoSourceFor(question.to_string()))?;
        let source = self.source(source_name)?;
        let estimate = source.estimate(&SourceQuery::Sql(sql.clone()));
        let mut plan = DataPlan::new(question);
        plan.push(DataNode {
            id: self.next_id(),
            op: DataOp::SqlTemplate {
                source: source_name.to_string(),
                template: sql,
            },
            inputs: vec![],
            estimate,
        });
        Ok(plan)
    }

    /// Plans the `PROFILER.CRITERIA ← USER.TEXT` transformation (§V-G):
    /// an `extract` operator over the raw text.
    pub fn plan_extract(&self, text: &str) -> DataPlan {
        let mut plan = DataPlan::new(format!("extract criteria from: {text}"));
        let lit = self.next_id();
        plan.push(DataNode {
            id: lit.clone(),
            op: DataOp::Literal { value: json!(text) },
            inputs: vec![],
            estimate: CostEstimate::FREE,
        });
        let profile = self.llm.profile();
        plan.push(DataNode {
            id: self.next_id(),
            op: DataOp::Extract,
            inputs: vec![("text".into(), lit)],
            estimate: CostEstimate {
                cost_units: profile.call_cost(24, 12),
                latency_micros: profile.call_latency_micros(12),
                accuracy: profile.accuracy,
            },
        });
        plan
    }

    /// Plans a summarize operator over a table value.
    pub fn plan_summarize(&self, rows: Value) -> DataPlan {
        let mut plan = DataPlan::new("summarize rows");
        let lit = self.next_id();
        plan.push(DataNode {
            id: lit.clone(),
            op: DataOp::Literal { value: rows },
            inputs: vec![],
            estimate: CostEstimate::FREE,
        });
        let profile = self.llm.profile();
        plan.push(DataNode {
            id: self.next_id(),
            op: DataOp::Summarize,
            inputs: vec![("rows".into(), lit)],
            estimate: CostEstimate {
                cost_units: profile.call_cost(64, 32),
                latency_micros: profile.call_latency_micros(32),
                accuracy: profile.accuracy,
            },
        });
        plan
    }

    /// Satisfies a task-plan `FromData` binding (§V-H): the coordinator asks
    /// for "the right data" described by `query`, in the context of the
    /// original `utterance`. Routing:
    ///
    /// * job/listing-shaped requests → the Fig 7 decomposed job query over
    ///   the utterance's criteria;
    /// * otherwise, a ranked document search when a document source exists;
    /// * otherwise the request is unsatisfiable.
    pub fn satisfy(&self, query: &str, utterance: &str) -> Result<ExecutedPlan> {
        let plan = self.plan_for_binding(query, utterance)?;
        self.execute(&plan)
    }

    /// Plans — without executing — the data plan for a `FromData` binding:
    /// the routing half of [`DataPlanner::satisfy`]. The unified plan IR
    /// lowering uses this to splice the operator DAG into its owning task
    /// node at plan time, so the optimizer sees the whole composite DAG.
    pub fn plan_for_binding(&self, query: &str, utterance: &str) -> Result<DataPlan> {
        let q = query.to_lowercase();
        if q.contains("job") || q.contains("listing") || q.contains("posting") {
            return self.plan_job_query(utterance);
        }
        if let Some(doc) = self.sources_by_modality("document").into_iter().next() {
            let mut plan = DataPlan::new(query);
            plan.push(DataNode {
                id: self.next_id(),
                op: DataOp::DocSearch {
                    source: doc.name().to_string(),
                    query: format!("{query} {utterance}"),
                    limit: 10,
                },
                inputs: vec![],
                estimate: doc.estimate(&SourceQuery::DocSearch {
                    query: query.to_string(),
                    limit: 10,
                }),
            });
            return Ok(plan);
        }
        Err(PlanError::NoSourceFor(query.to_string()))
    }

    /// Executes a plan, returning the output value, actual QoS, and a trace.
    pub fn execute(&self, plan: &DataPlan) -> Result<ExecutedPlan> {
        plan.validate()?;
        let mut values: HashMap<&str, Value> = HashMap::new();
        let mut actual = CostProfile::FREE;
        let mut trace = Vec::with_capacity(plan.nodes.len());

        for node in &plan.nodes {
            let get = |slot: &str| -> Result<&Value> {
                node.inputs
                    .iter()
                    .find(|(s, _)| s == slot)
                    .and_then(|(_, dep)| values.get(dep.as_str()))
                    .ok_or_else(|| {
                        PlanError::Execution(format!("node {} missing input slot {slot}", node.id))
                    })
            };
            let value: Value = match &node.op {
                DataOp::Literal { value } => value.clone(),
                DataOp::Q2NL { fragment } => Value::String(q2nl(fragment)),
                DataOp::Knowledge { source } => {
                    let question = get("question")?
                        .as_str()
                        .ok_or_else(|| {
                            PlanError::Execution("knowledge question must be text".into())
                        })?
                        .to_string();
                    let src = self.source(source)?;
                    let result = src
                        .query(&SourceQuery::Knowledge(question))
                        .map_err(|e| PlanError::Execution(e.to_string()))?;
                    result.data
                }
                DataOp::GraphExpand {
                    source,
                    node: start,
                    depth,
                } => {
                    let src = self.source(source)?;
                    let result = src
                        .query(&SourceQuery::GraphRelated {
                            node: start.clone(),
                            edge_type: None,
                            depth: *depth,
                        })
                        .map_err(|e| PlanError::Execution(e.to_string()))?;
                    // Include the start node's own name with its relatives.
                    let mut names = vec![unslugify(start)];
                    names.extend(name_list(&result.data));
                    Value::Array(names.into_iter().map(Value::String).collect())
                }
                DataOp::SqlTemplate { source, template } => {
                    let mut sql = template.clone();
                    for (slot, dep) in &node.inputs {
                        let list = values.get(dep.as_str()).ok_or_else(|| {
                            PlanError::Execution(format!("missing dependency {dep}"))
                        })?;
                        let literals = sql_string_list(list);
                        sql = sql.replace(&format!("{{{slot}}}"), &literals);
                    }
                    let src = self.source(source)?;
                    let result = src
                        .query(&SourceQuery::Sql(sql))
                        .map_err(|e| PlanError::Execution(e.to_string()))?;
                    result.data
                }
                DataOp::DocSearch {
                    source,
                    query,
                    limit,
                } => {
                    let src = self.source(source)?;
                    let result = src
                        .query(&SourceQuery::DocSearch {
                            query: query.clone(),
                            limit: *limit,
                        })
                        .map_err(|e| PlanError::Execution(e.to_string()))?;
                    result.data
                }
                DataOp::Extract => {
                    let text = get("text")?
                        .as_str()
                        .ok_or_else(|| PlanError::Execution("extract input must be text".into()))?
                        .to_string();
                    let (criteria, _) = self.llm.extract_criteria(&text);
                    criteria.to_json()
                }
                DataOp::Summarize => {
                    let rows = get("rows")?.clone();
                    let (summary, _) = self.llm.summarize_rows(&rows);
                    Value::String(summary)
                }
            };
            let rows = value.as_array().map(Vec::len).unwrap_or(1);
            trace.push((node.id.clone(), node.op.name().to_string(), rows));
            actual = actual.then(&CostProfile::new(
                node.estimate.cost_units,
                node.estimate.latency_micros,
                node.estimate.accuracy,
            ));
            values.insert(node.id.as_str(), value);
        }

        let value = values
            .remove(plan.output.as_str())
            .ok_or_else(|| PlanError::Execution("plan has no output".into()))?;
        Ok(ExecutedPlan {
            value,
            actual,
            trace,
        })
    }
}

/// Q2NL: renders a structured fragment as a natural-language question.
fn q2nl(fragment: &str) -> String {
    // `city ∈ "SF bay area"` → `cities in the SF bay area`.
    if let Some((attr, region)) = fragment.split_once('∈') {
        let attr = pluralize(attr.trim());
        let region = region.trim().trim_matches('"');
        return format!("{attr} in the {region}").to_lowercase();
    }
    fragment.to_lowercase()
}

/// English pluralization good enough for attribute names (`city` →
/// `cities`, `title` → `titles`, `class` → `classes`).
fn pluralize(noun: &str) -> String {
    let lower = noun.to_lowercase();
    if let Some(stem) = lower.strip_suffix('y') {
        if !stem.ends_with(['a', 'e', 'i', 'o', 'u']) {
            return format!("{stem}ies");
        }
    }
    if lower.ends_with('s')
        || lower.ends_with('x')
        || lower.ends_with("ch")
        || lower.ends_with("sh")
    {
        return format!("{lower}es");
    }
    format!("{lower}s")
}

fn slugify(name: &str) -> String {
    name.to_lowercase()
        .split_whitespace()
        .collect::<Vec<_>>()
        .join("-")
}

fn unslugify(slug: &str) -> String {
    slug.replace('-', " ")
}

/// Extracts display names from a list of strings or node objects.
fn name_list(value: &Value) -> Vec<String> {
    value
        .as_array()
        .into_iter()
        .flatten()
        .filter_map(|item| match item {
            Value::String(s) => Some(s.clone()),
            Value::Object(o) => o
                .get("props")
                .and_then(|p| p.get("name"))
                .or_else(|| o.get("name"))
                .and_then(Value::as_str)
                .map(str::to_string)
                .or_else(|| o.get("id").and_then(Value::as_str).map(str::to_string)),
            _ => None,
        })
        .collect()
}

/// Renders a JSON list as quoted SQL literals.
fn sql_string_list(value: &Value) -> String {
    let names = name_list(value);
    if names.is_empty() {
        // An empty IN list is invalid SQL; use an impossible literal.
        return "''".to_string();
    }
    names
        .iter()
        .map(|n| format!("'{}'", n.replace('\'', "''")))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Samples distinct text values per column for data-aware NL2Q.
fn sample_values(db: &RelationalDb) -> HashMap<String, Vec<String>> {
    const CAP: usize = 200;
    let mut out: HashMap<String, Vec<String>> = HashMap::new();
    for table in db.table_names() {
        let schema = db.schema_of(&table).expect("table exists");
        for col in &schema.columns {
            if col.ctype != blueprint_datastore::ColumnType::Text {
                continue;
            }
            if let Ok(rs) = db.execute(&format!("SELECT DISTINCT {} FROM {}", col.name, table)) {
                let entry = out.entry(col.name.clone()).or_default();
                for row in rs.rows.iter().take(CAP) {
                    if let Some(s) = row[0].as_str() {
                        let lower = s.to_lowercase();
                        if !entry.contains(&lower) {
                            entry.push(lower);
                        }
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use blueprint_datastore::{
        DocumentStore, GraphSource, KvSource, KvStore, PropertyGraph, RelationalSource,
    };
    use blueprint_llmsim::{ModelProfile, ParametricSource};
    use blueprint_registry::DataRegistry;

    const RUNNING_EXAMPLE: &str = "I am looking for a data scientist position in SF bay area.";

    fn jobs_db() -> Arc<RelationalDb> {
        let db = Arc::new(RelationalDb::new());
        db.execute("CREATE TABLE jobs (id INT, title TEXT, city TEXT, salary FLOAT)")
            .unwrap();
        db.execute(
            "INSERT INTO jobs VALUES \
             (1, 'data scientist', 'san francisco', 180000.0), \
             (2, 'machine learning engineer', 'oakland', 175000.0), \
             (3, 'data scientist', 'new york', 160000.0), \
             (4, 'data analyst', 'berkeley', 120000.0), \
             (5, 'recruiter', 'san francisco', 90000.0)",
        )
        .unwrap();
        db
    }

    fn taxonomy() -> Arc<PropertyGraph> {
        let g = Arc::new(PropertyGraph::new());
        for (id, name) in [
            ("data-scientist", "data scientist"),
            ("machine-learning-engineer", "machine learning engineer"),
            ("data-analyst", "data analyst"),
        ] {
            g.add_node(id, "title", json!({"name": name})).unwrap();
        }
        g.add_edge("machine-learning-engineer", "data-scientist", "related_to")
            .unwrap();
        g.add_edge("data-analyst", "data-scientist", "related_to")
            .unwrap();
        g
    }

    fn planner() -> (DataPlanner, Arc<RelationalDb>) {
        let db = jobs_db();
        let llm = Arc::new(SimLlm::new(ModelProfile::large()));
        let mut p = DataPlanner::new(Arc::new(DataRegistry::new()), Arc::clone(&llm));
        p.add_source(Arc::new(RelationalSource::new("hr-db", Arc::clone(&db))));
        p.add_source(Arc::new(GraphSource::new("title-taxonomy", taxonomy())));
        p.add_source(Arc::new(ParametricSource::new("gpt-large", llm)));
        (p, db)
    }

    #[test]
    fn fig7_decomposition_for_running_example() {
        let (p, _) = planner();
        let plan = p.plan_job_query(RUNNING_EXAMPLE).unwrap();
        let ops: Vec<&str> = plan.nodes.iter().map(|n| n.op.name()).collect();
        assert_eq!(ops, ["q2nl", "knowledge", "graph-expand", "sql"]);
        let text = plan.render_text();
        assert!(text.contains("knowledge[gpt-large]"));
        assert!(text.contains("city IN ({cities})"));
        assert!(text.contains("title IN ({titles})"));
    }

    #[test]
    fn decomposed_plan_finds_bay_area_jobs() {
        let (p, _) = planner();
        let plan = p.plan_job_query(RUNNING_EXAMPLE).unwrap();
        let result = p.execute(&plan).unwrap();
        let rows = result.value.as_array().unwrap();
        // Jobs 1 (ds, sf), 2 (mle, oakland), 4 (analyst, berkeley) match:
        // bay-area cities × taxonomy-expanded titles. NY data scientist and
        // SF recruiter do not.
        let ids: Vec<i64> = rows.iter().map(|r| r["id"].as_i64().unwrap()).collect();
        assert_eq!(ids, [1, 2, 4]);
        assert!(result.actual.cost_per_call > 0.0);
        assert_eq!(result.trace.len(), 4);
    }

    #[test]
    fn direct_nl2q_misses_region_rows() {
        // The §V-G claim: "SF bay area" won't match any city in the
        // database, so direct NL2Q returns nothing while the decomposed
        // plan succeeds.
        let (p, db) = planner();
        let plan = p.plan_nl2q_direct(RUNNING_EXAMPLE, &db, "hr-db").unwrap();
        let result = p.execute(&plan).unwrap();
        let direct_rows = result.value.as_array().unwrap().len();
        let decomposed = p
            .execute(&p.plan_job_query(RUNNING_EXAMPLE).unwrap())
            .unwrap();
        let decomposed_rows = decomposed.value.as_array().unwrap().len();
        assert!(
            direct_rows < decomposed_rows,
            "direct={direct_rows} decomposed={decomposed_rows}"
        );
    }

    #[test]
    fn literal_city_skips_knowledge_injection() {
        let (p, _) = planner();
        let plan = p
            .plan_job_query("looking for a data scientist position in oakland")
            .unwrap();
        let ops: Vec<&str> = plan.nodes.iter().map(|n| n.op.name()).collect();
        assert!(!ops.contains(&"knowledge"));
        assert!(ops.contains(&"literal"));
        let result = p.execute(&plan).unwrap();
        // Oakland × expanded titles → job 2 only.
        assert_eq!(result.value.as_array().unwrap().len(), 1);
    }

    #[test]
    fn missing_graph_source_falls_back_to_literal_title() {
        let db = jobs_db();
        let llm = Arc::new(SimLlm::new(ModelProfile::large()));
        let mut p = DataPlanner::new(Arc::new(DataRegistry::new()), Arc::clone(&llm));
        p.add_source(Arc::new(RelationalSource::new("hr-db", Arc::clone(&db))));
        p.add_source(Arc::new(ParametricSource::new("gpt-large", llm)));
        let plan = p.plan_job_query(RUNNING_EXAMPLE).unwrap();
        let ops: Vec<&str> = plan.nodes.iter().map(|n| n.op.name()).collect();
        assert!(ops.contains(&"literal"));
        let result = p.execute(&plan).unwrap();
        // Without taxonomy expansion only the exact title matches: job 1.
        let ids: Vec<i64> = result
            .value
            .as_array()
            .unwrap()
            .iter()
            .map(|r| r["id"].as_i64().unwrap())
            .collect();
        assert_eq!(ids, [1]);
    }

    #[test]
    fn missing_relational_source_fails() {
        let llm = Arc::new(SimLlm::new(ModelProfile::large()));
        let mut p = DataPlanner::new(Arc::new(DataRegistry::new()), Arc::clone(&llm));
        p.add_source(Arc::new(ParametricSource::new("gpt-large", llm)));
        assert!(matches!(
            p.plan_job_query(RUNNING_EXAMPLE),
            Err(PlanError::NoSourceFor(_))
        ));
    }

    #[test]
    fn parametric_choice_respects_constraints() {
        let db = jobs_db();
        let mut p = DataPlanner::new(
            Arc::new(DataRegistry::new()),
            Arc::new(SimLlm::new(ModelProfile::large())),
        );
        p.add_source(Arc::new(RelationalSource::new("hr-db", db)));
        p.add_source(Arc::new(ParametricSource::new(
            "gpt-large",
            Arc::new(SimLlm::new(ModelProfile::large())),
        )));
        p.add_source(Arc::new(ParametricSource::new(
            "gpt-tiny",
            Arc::new(SimLlm::new(ModelProfile::tiny())),
        )));
        // Cost-min without constraints picks the tiny tier...
        p.set_objective(Objective::MinCost);
        let plan = p.plan_job_query(RUNNING_EXAMPLE).unwrap();
        let knowledge = plan
            .nodes
            .iter()
            .find(|n| n.op.name() == "knowledge")
            .unwrap();
        assert!(matches!(&knowledge.op, DataOp::Knowledge { source } if source == "gpt-tiny"));
        // ...but an accuracy floor forces the large tier.
        p.set_constraints(QosConstraints::none().with_min_accuracy(0.95));
        let plan2 = p.plan_job_query(RUNNING_EXAMPLE).unwrap();
        let knowledge2 = plan2
            .nodes
            .iter()
            .find(|n| n.op.name() == "knowledge")
            .unwrap();
        assert!(matches!(&knowledge2.op, DataOp::Knowledge { source } if source == "gpt-large"));
    }

    #[test]
    fn infeasible_constraints_error() {
        let (mut p, _) = {
            let (p, db) = planner();
            (p, db)
        };
        p.set_constraints(QosConstraints::none().with_min_accuracy(0.999));
        assert!(matches!(
            p.plan_job_query(RUNNING_EXAMPLE),
            Err(PlanError::Infeasible(_))
        ));
    }

    #[test]
    fn extract_plan_round_trip() {
        let (p, _) = planner();
        let plan = p.plan_extract(RUNNING_EXAMPLE);
        let result = p.execute(&plan).unwrap();
        assert_eq!(result.value["title"], json!("data scientist"));
        assert_eq!(result.value["location"], json!("sf bay area"));
    }

    #[test]
    fn summarize_plan_round_trip() {
        let (p, _) = planner();
        let plan = p.plan_summarize(json!([{"city": "sf", "n": 2}]));
        let result = p.execute(&plan).unwrap();
        assert!(result.value.as_str().unwrap().contains("1 row"));
    }

    #[test]
    fn q2nl_renders_fragments() {
        assert_eq!(q2nl("city ∈ \"SF bay area\""), "cities in the sf bay area");
        assert_eq!(q2nl("title ∈ \"data roles\""), "titles in the data roles");
        assert_eq!(q2nl("anything else"), "anything else");
    }

    #[test]
    fn pluralize_rules() {
        assert_eq!(pluralize("city"), "cities");
        assert_eq!(pluralize("title"), "titles");
        assert_eq!(pluralize("class"), "classes");
        assert_eq!(pluralize("box"), "boxes");
        assert_eq!(pluralize("day"), "days");
    }

    #[test]
    fn sql_string_list_escapes_and_handles_empty() {
        assert_eq!(sql_string_list(&json!(["a", "o'b"])), "'a', 'o''b'");
        assert_eq!(sql_string_list(&json!([])), "''");
    }

    #[test]
    fn doc_search_op_executes() {
        let store = Arc::new(DocumentStore::new());
        store
            .put("p1", json!({"summary": "senior data scientist"}))
            .unwrap();
        let llm = Arc::new(SimLlm::new(ModelProfile::large()));
        let mut p = DataPlanner::new(Arc::new(DataRegistry::new()), llm);
        p.add_source(Arc::new(blueprint_datastore::source::DocumentSource::new(
            "profiles", store,
        )));
        let mut plan = DataPlan::new("find data scientists");
        plan.push(DataNode {
            id: "d1".into(),
            op: DataOp::DocSearch {
                source: "profiles".into(),
                query: "data scientist".into(),
                limit: 5,
            },
            inputs: vec![],
            estimate: CostEstimate::FREE,
        });
        let result = p.execute(&plan).unwrap();
        assert_eq!(result.value.as_array().unwrap().len(), 1);
    }

    #[test]
    fn satisfy_routes_job_requests_to_decomposition() {
        let (p, _) = planner();
        let result = p
            .satisfy("available job listings", RUNNING_EXAMPLE)
            .unwrap();
        assert_eq!(result.value.as_array().unwrap().len(), 3);
    }

    #[test]
    fn satisfy_routes_other_requests_to_documents() {
        let store = Arc::new(DocumentStore::new());
        store
            .put("p1", json!({"summary": "python data scientist"}))
            .unwrap();
        let llm = Arc::new(SimLlm::new(ModelProfile::large()));
        let mut p = DataPlanner::new(Arc::new(DataRegistry::new()), llm);
        p.add_source(Arc::new(blueprint_datastore::DocumentSource::new(
            "profiles", store,
        )));
        let result = p
            .satisfy("candidate profiles", "python data scientist")
            .unwrap();
        assert_eq!(result.value.as_array().unwrap().len(), 1);
    }

    #[test]
    fn satisfy_without_any_source_fails() {
        let llm = Arc::new(SimLlm::new(ModelProfile::large()));
        let p = DataPlanner::new(Arc::new(DataRegistry::new()), llm);
        assert!(p.satisfy("candidate profiles", "x").is_err());
    }

    #[test]
    fn kv_sources_are_listed() {
        let (mut p, _) = planner();
        p.add_source(Arc::new(KvSource::new("cache", Arc::new(KvStore::new()))));
        assert_eq!(
            p.source_names(),
            ["cache", "gpt-large", "hr-db", "title-taxonomy"]
        );
    }

    #[test]
    fn execute_rejects_unknown_source() {
        let (p, _) = planner();
        let mut plan = DataPlan::new("r");
        plan.push(DataNode {
            id: "d1".into(),
            op: DataOp::DocSearch {
                source: "ghost".into(),
                query: "q".into(),
                limit: 1,
            },
            inputs: vec![],
            estimate: CostEstimate::FREE,
        });
        assert!(matches!(p.execute(&plan), Err(PlanError::NoSourceFor(_))));
    }
}
