//! Per-agent circuit breakers: closed → open → half-open.
//!
//! Callers pass the current time in as `now_micros` (any monotone scale);
//! breakers never read a clock themselves, which keeps them deterministic
//! under test and lets the coordinator drive them from its own epoch.

use parking_lot::Mutex;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;

use blueprint_observability::{Counter, MetricsRegistry};

/// Breaker lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: all calls allowed.
    Closed,
    /// Tripped: calls rejected until the cooldown elapses.
    Open,
    /// Probing: a limited number of trial calls allowed; one success closes
    /// the breaker, one failure re-opens it.
    HalfOpen,
}

impl fmt::Display for BreakerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        };
        f.write_str(s)
    }
}

/// Tuning knobs for a [`CircuitBreaker`].
#[derive(Debug, Clone, PartialEq)]
pub struct BreakerConfig {
    /// Sliding window length (number of most-recent outcomes considered).
    pub window: usize,
    /// Minimum outcomes in the window before the failure rate is evaluated.
    pub min_samples: usize,
    /// Failure rate in `[0, 1]` at or above which the breaker opens.
    pub failure_threshold: f64,
    /// Time an open breaker waits before moving to half-open.
    pub cooldown_micros: u64,
    /// Trial calls permitted while half-open.
    pub half_open_probes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            window: 8,
            min_samples: 3,
            failure_threshold: 0.5,
            cooldown_micros: 50_000,
            half_open_probes: 1,
        }
    }
}

/// Sliding-window circuit breaker for a single agent.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    outcomes: VecDeque<bool>, // true = success
    state: BreakerState,
    opened_at_micros: u64,
    probes_in_flight: u32,
}

impl CircuitBreaker {
    /// Creates a closed breaker with the given config.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            outcomes: VecDeque::new(),
            state: BreakerState::Closed,
            opened_at_micros: 0,
            probes_in_flight: 0,
        }
    }

    /// Current state without considering cooldown expiry.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Failure rate over the sliding window (0 when empty).
    pub fn failure_rate(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        let failures = self.outcomes.iter().filter(|ok| !**ok).count();
        failures as f64 / self.outcomes.len() as f64
    }

    /// Whether a call may proceed at `now_micros`. An open breaker whose
    /// cooldown has elapsed transitions to half-open and admits a probe.
    pub fn allow(&mut self, now_micros: u64) -> bool {
        match self.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                if now_micros
                    >= self
                        .opened_at_micros
                        .saturating_add(self.config.cooldown_micros)
                {
                    self.state = BreakerState::HalfOpen;
                    self.probes_in_flight = 1;
                    true
                } else {
                    false
                }
            }
            BreakerState::HalfOpen => {
                if self.probes_in_flight < self.config.half_open_probes {
                    self.probes_in_flight += 1;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Records a successful call. A half-open success closes the breaker and
    /// clears the failure window.
    pub fn record_success(&mut self, _now_micros: u64) {
        match self.state {
            BreakerState::HalfOpen => {
                self.state = BreakerState::Closed;
                self.outcomes.clear();
                self.probes_in_flight = 0;
            }
            _ => self.push_outcome(true),
        }
    }

    /// Records a failed call. A half-open failure re-opens immediately; a
    /// closed breaker opens once the windowed failure rate crosses the
    /// threshold.
    pub fn record_failure(&mut self, now_micros: u64) {
        match self.state {
            BreakerState::HalfOpen => {
                self.trip(now_micros);
            }
            BreakerState::Open => {}
            BreakerState::Closed => {
                self.push_outcome(false);
                if self.outcomes.len() >= self.config.min_samples
                    && self.failure_rate() >= self.config.failure_threshold
                {
                    self.trip(now_micros);
                }
            }
        }
    }

    /// Forces the breaker into half-open, e.g. after the agent container was
    /// restarted: the replacement instance gets probe traffic, not blind
    /// trust.
    pub fn force_half_open(&mut self) {
        self.state = BreakerState::HalfOpen;
        self.probes_in_flight = 0;
        self.outcomes.clear();
    }

    fn trip(&mut self, now_micros: u64) {
        self.state = BreakerState::Open;
        self.opened_at_micros = now_micros;
        self.probes_in_flight = 0;
    }

    fn push_outcome(&mut self, ok: bool) {
        self.outcomes.push_back(ok);
        while self.outcomes.len() > self.config.window {
            self.outcomes.pop_front();
        }
    }
}

/// Thread-safe map of per-agent circuit breakers.
#[derive(Debug)]
pub struct BreakerRegistry {
    config: BreakerConfig,
    breakers: Mutex<BTreeMap<String, CircuitBreaker>>,
    trips: Mutex<Counter>,
}

impl BreakerRegistry {
    /// Creates an empty registry; breakers are created lazily per agent.
    pub fn new(config: BreakerConfig) -> Self {
        BreakerRegistry {
            config,
            breakers: Mutex::new(BTreeMap::new()),
            trips: Mutex::new(Counter::default()),
        }
    }

    /// Reports every closed/half-open → open transition into
    /// `blueprint.resilience.breaker_trips`.
    pub fn set_metrics(&self, metrics: &MetricsRegistry) {
        *self.trips.lock() = metrics.counter("blueprint.resilience.breaker_trips");
    }

    /// Whether a call to `agent` may proceed at `now_micros`.
    pub fn allow(&self, agent: &str, now_micros: u64) -> bool {
        let mut map = self.breakers.lock();
        map.entry(agent.to_string())
            .or_insert_with(|| CircuitBreaker::new(self.config.clone()))
            .allow(now_micros)
    }

    /// Records a call outcome for `agent`.
    pub fn record(&self, agent: &str, ok: bool, now_micros: u64) {
        let tripped = {
            let mut map = self.breakers.lock();
            let breaker = map
                .entry(agent.to_string())
                .or_insert_with(|| CircuitBreaker::new(self.config.clone()));
            let was_open = breaker.state() == BreakerState::Open;
            if ok {
                breaker.record_success(now_micros);
            } else {
                breaker.record_failure(now_micros);
            }
            !was_open && breaker.state() == BreakerState::Open
        };
        if tripped {
            self.trips.lock().inc();
        }
    }

    /// Current state for `agent` (closed when the agent has no breaker yet).
    pub fn state(&self, agent: &str) -> BreakerState {
        self.breakers
            .lock()
            .get(agent)
            .map_or(BreakerState::Closed, CircuitBreaker::state)
    }

    /// Whether the breaker for `agent` is open (i.e. the planner should
    /// route around it).
    pub fn is_open(&self, agent: &str) -> bool {
        self.state(agent) == BreakerState::Open
    }

    /// Names of all agents whose breakers are currently open.
    pub fn open_circuits(&self) -> Vec<String> {
        self.breakers
            .lock()
            .iter()
            .filter(|(_, b)| b.state() == BreakerState::Open)
            .map(|(name, _)| name.clone())
            .collect()
    }

    /// Moves `agent`'s breaker to half-open after a container restart. A
    /// no-op when the agent has no breaker yet (fresh agents start closed).
    pub fn on_restart(&self, agent: &str) {
        if let Some(breaker) = self.breakers.lock().get_mut(agent) {
            breaker.force_half_open();
        }
    }

    /// Snapshot of `(agent, state, failure_rate)` for observability.
    pub fn snapshot(&self) -> Vec<(String, BreakerState, f64)> {
        self.breakers
            .lock()
            .iter()
            .map(|(name, b)| (name.clone(), b.state(), b.failure_rate()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> BreakerConfig {
        BreakerConfig {
            window: 4,
            min_samples: 2,
            failure_threshold: 0.5,
            cooldown_micros: 1_000,
            half_open_probes: 1,
        }
    }

    #[test]
    fn registry_counts_trips_once_per_transition() {
        let metrics = MetricsRegistry::new();
        let reg = BreakerRegistry::new(quick_config());
        reg.set_metrics(&metrics);
        reg.record("a", false, 0);
        reg.record("a", false, 10); // trips here (min_samples=2, rate 1.0)
        reg.record("a", false, 20); // already open: not a new trip
        assert!(reg.is_open("a"));
        assert_eq!(
            metrics
                .snapshot()
                .counter("blueprint.resilience.breaker_trips"),
            1
        );
        // Cooldown elapses, the probe fails: a second distinct trip.
        assert!(reg.allow("a", 2_000));
        reg.record("a", false, 2_000);
        assert_eq!(
            metrics
                .snapshot()
                .counter("blueprint.resilience.breaker_trips"),
            2
        );
    }

    #[test]
    fn opens_on_failure_rate() {
        let mut b = CircuitBreaker::new(quick_config());
        assert_eq!(b.state(), BreakerState::Closed);
        b.record_failure(0);
        assert_eq!(b.state(), BreakerState::Closed); // below min_samples
        b.record_failure(10);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow(20));
    }

    #[test]
    fn half_open_after_cooldown_then_closes_on_success() {
        let mut b = CircuitBreaker::new(quick_config());
        b.record_failure(0);
        b.record_failure(0);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow(500)); // still cooling down
        assert!(b.allow(1_000)); // cooldown elapsed → half-open probe
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.allow(1_001)); // probe budget of 1 consumed
        b.record_success(1_002);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.failure_rate(), 0.0);
    }

    #[test]
    fn half_open_failure_reopens() {
        let mut b = CircuitBreaker::new(quick_config());
        b.record_failure(0);
        b.record_failure(0);
        assert!(b.allow(2_000));
        b.record_failure(2_001);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow(2_002));
        // And the new open period uses the new trip time.
        assert!(b.allow(3_001));
    }

    #[test]
    fn successes_keep_breaker_closed() {
        let mut b = CircuitBreaker::new(quick_config());
        for t in 0..10 {
            b.record_success(t);
            b.record_failure(t);
        }
        // Window of 4 alternating outcomes → 50% failure rate → trips.
        assert_eq!(b.state(), BreakerState::Open);

        // One failure per three successes keeps the windowed rate at 25%.
        let mut healthy = CircuitBreaker::new(quick_config());
        for t in 0..12 {
            if t % 4 == 3 {
                healthy.record_failure(t);
            } else {
                healthy.record_success(t);
            }
        }
        assert_eq!(healthy.state(), BreakerState::Closed);
    }

    #[test]
    fn registry_routes_and_restarts() {
        let reg = BreakerRegistry::new(quick_config());
        assert!(reg.allow("writer", 0));
        reg.record("writer", false, 0);
        reg.record("writer", false, 0);
        assert!(reg.is_open("writer"));
        assert_eq!(reg.open_circuits(), vec!["writer".to_string()]);
        assert!(!reg.allow("writer", 10));
        assert!(reg.allow("reader", 10)); // unrelated agent unaffected

        // Container restart: breaker re-enters half-open, not closed.
        reg.on_restart("writer");
        assert_eq!(reg.state("writer"), BreakerState::HalfOpen);
        assert!(reg.allow("writer", 11)); // probe admitted
        reg.record("writer", true, 12);
        assert_eq!(reg.state("writer"), BreakerState::Closed);
    }

    #[test]
    fn restart_of_unknown_agent_is_noop() {
        let reg = BreakerRegistry::new(quick_config());
        reg.on_restart("ghost");
        assert_eq!(reg.state("ghost"), BreakerState::Closed);
        assert!(reg.snapshot().is_empty());
    }
}
