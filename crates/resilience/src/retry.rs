//! Retry with exponential backoff, deterministic jitter, and a retry budget.

/// Retry policy for failed or timed-out agent invocations.
///
/// Backoff before attempt `n+1` is `base * multiplier^(n-1)`, capped at
/// `max_delay_micros`, then jittered by a deterministic ±`jitter_frac`
/// derived from `(seed, attempt)` — no RNG state, so replays are exact.
/// The cumulative delay a caller may spend across all retries of one task is
/// capped by `retry_budget_micros`; [`RetryPolicy::delay_before`] refuses a
/// retry that would blow the budget.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Maximum total attempts (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_delay_micros: u64,
    /// Exponential growth factor per retry.
    pub multiplier: f64,
    /// Upper bound on a single backoff delay (pre-jitter).
    pub max_delay_micros: u64,
    /// Jitter fraction in `[0, 1)`: each delay is scaled by `1 ± jitter_frac`.
    pub jitter_frac: f64,
    /// Cap on cumulative retry delay per task.
    pub retry_budget_micros: u64,
    /// Seed for deterministic jitter.
    pub seed: u64,
}

impl RetryPolicy {
    /// No retries at all.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_delay_micros: 0,
            multiplier: 1.0,
            max_delay_micros: 0,
            jitter_frac: 0.0,
            retry_budget_micros: 0,
            seed: 0,
        }
    }

    /// A sensible default: 3 attempts, 5ms base, 2x growth, 40ms cap,
    /// 10% jitter, 200ms total retry budget.
    pub fn standard(seed: u64) -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_delay_micros: 5_000,
            multiplier: 2.0,
            max_delay_micros: 40_000,
            jitter_frac: 0.1,
            retry_budget_micros: 200_000,
            seed,
        }
    }

    /// Whether any retries are configured.
    pub fn enabled(&self) -> bool {
        self.max_attempts > 1
    }

    /// Raw exponential backoff (pre-jitter) before attempt `attempt + 1`,
    /// where `attempt` counts completed attempts (1-based). Monotone
    /// non-decreasing in `attempt`, capped at `max_delay_micros`.
    pub fn raw_backoff_micros(&self, attempt: u32) -> u64 {
        if attempt == 0 {
            return 0;
        }
        let mult = self.multiplier.max(1.0);
        let exp = mult.powi(attempt.saturating_sub(1).min(64) as i32);
        let raw = (self.base_delay_micros as f64 * exp).round();
        if raw.is_finite() {
            (raw as u64).min(self.max_delay_micros)
        } else {
            self.max_delay_micros
        }
    }

    /// Jittered backoff before attempt `attempt + 1`. Deterministic for a
    /// given `(seed, attempt)`; always within
    /// `[raw * (1 - jitter_frac), raw * (1 + jitter_frac)]`.
    pub fn backoff_micros(&self, attempt: u32) -> u64 {
        let raw = self.raw_backoff_micros(attempt);
        if raw == 0 || self.jitter_frac <= 0.0 {
            return raw;
        }
        // Deterministic unit roll from (seed, attempt).
        let mut x = self.seed ^ (u64::from(attempt)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        let unit = (x >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        let frac = self.jitter_frac.clamp(0.0, 0.999_999);
        let scale = 1.0 + frac * (2.0 * unit - 1.0); // [1 - frac, 1 + frac)
        (raw as f64 * scale).round() as u64
    }

    /// Decides whether to retry after `attempts` completed attempts with
    /// `spent_delay_micros` of cumulative backoff already consumed. Returns
    /// the delay to wait before the next attempt, or `None` when attempts or
    /// the retry budget are exhausted.
    pub fn delay_before(&self, attempts: u32, spent_delay_micros: u64) -> Option<u64> {
        if attempts >= self.max_attempts {
            return None;
        }
        let delay = self.backoff_micros(attempts);
        if spent_delay_micros.saturating_add(delay) > self.retry_budget_micros {
            return None;
        }
        Some(delay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_retries() {
        let p = RetryPolicy::none();
        assert!(!p.enabled());
        assert_eq!(p.delay_before(1, 0), None);
    }

    #[test]
    fn backoff_grows_then_caps() {
        let p = RetryPolicy {
            jitter_frac: 0.0,
            ..RetryPolicy::standard(1)
        };
        assert_eq!(p.raw_backoff_micros(1), 5_000);
        assert_eq!(p.raw_backoff_micros(2), 10_000);
        assert_eq!(p.raw_backoff_micros(3), 20_000);
        assert_eq!(p.raw_backoff_micros(4), 40_000);
        assert_eq!(p.raw_backoff_micros(5), 40_000); // capped
    }

    #[test]
    fn budget_refuses_overdraw() {
        let p = RetryPolicy {
            jitter_frac: 0.0,
            retry_budget_micros: 12_000,
            max_attempts: 10,
            ..RetryPolicy::standard(1)
        };
        // First retry costs 5ms: fits.
        assert_eq!(p.delay_before(1, 0), Some(5_000));
        // Second retry costs 10ms: 5 + 10 > 12 → refused.
        assert_eq!(p.delay_before(2, 5_000), None);
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let p = RetryPolicy::standard(99);
        for attempt in 1..=6 {
            let a = p.backoff_micros(attempt);
            let b = p.backoff_micros(attempt);
            assert_eq!(a, b, "jitter must be deterministic");
            let raw = p.raw_backoff_micros(attempt) as f64;
            assert!(
                (a as f64) >= (raw * 0.9).floor() && (a as f64) <= (raw * 1.1).ceil(),
                "attempt {attempt}: jittered {a} outside ±10% of raw {raw}"
            );
        }
    }

    #[test]
    fn attempts_exhaust() {
        let p = RetryPolicy::standard(5);
        assert!(p.delay_before(1, 0).is_some());
        assert!(p.delay_before(2, 0).is_some());
        assert_eq!(p.delay_before(3, 0), None); // max_attempts = 3
    }
}
