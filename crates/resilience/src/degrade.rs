//! Graceful degradation: fallback ladders and skippable nodes.
//!
//! When a premium agent or model tier keeps failing, the coordinator can
//! step down to a cheaper sibling at a known accuracy penalty instead of
//! failing the whole task; optional nodes (e.g. guardrail double-checks)
//! can be skipped entirely under deadline or budget pressure. Every
//! degradation decision is surfaced as a [`DegradationNote`] in the
//! execution report so the QoS accounting stays honest.

use serde::{Serialize, Value};
use serde_json::json;
use std::collections::{BTreeMap, BTreeSet};

/// Record of one degradation decision taken during execution.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradationNote {
    /// The agent or model that was degraded away from.
    pub from: String,
    /// The fallback that ran instead (`None` when the node was skipped).
    pub to: Option<String>,
    /// Accuracy penalty charged to the task budget, in `[0, 1]`.
    pub accuracy_penalty: f64,
    /// Human-readable reason (fault, open circuit, deadline pressure, ...).
    pub reason: String,
}

impl Serialize for DegradationNote {
    fn serialize(&self) -> Value {
        json!({
            "from": self.from,
            "to": self.to.clone().map_or(Value::Null, Value::String),
            "accuracy_penalty": self.accuracy_penalty,
            "reason": self.reason,
        })
    }
}

/// Static map of degradation options: who falls back to whom (and at what
/// accuracy cost), and which nodes may be skipped outright.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DegradationLadder {
    fallbacks: BTreeMap<String, (String, f64)>,
    skippable: BTreeSet<String>,
}

impl DegradationLadder {
    /// Empty ladder: nothing degrades, nothing is skippable.
    pub fn new() -> Self {
        DegradationLadder::default()
    }

    /// Default ladder for the simulated model tiers: `sim-large` falls back
    /// to `sim-small` (−8% accuracy), which falls back to `sim-tiny` (−15%).
    pub fn model_defaults() -> Self {
        DegradationLadder::new()
            .with_fallback("sim-large", "sim-small", 0.08)
            .with_fallback("sim-small", "sim-tiny", 0.15)
    }

    /// Registers `from → to` with the given accuracy penalty.
    pub fn with_fallback(
        mut self,
        from: impl Into<String>,
        to: impl Into<String>,
        accuracy_penalty: f64,
    ) -> Self {
        self.fallbacks
            .insert(from.into(), (to.into(), accuracy_penalty.clamp(0.0, 1.0)));
        self
    }

    /// Marks an agent/node as skippable under pressure.
    pub fn with_skippable(mut self, name: impl Into<String>) -> Self {
        self.skippable.insert(name.into());
        self
    }

    /// The fallback for `name`, if any, as `(fallback, accuracy_penalty)`.
    pub fn fallback_for(&self, name: &str) -> Option<(&str, f64)> {
        self.fallbacks
            .get(name)
            .map(|(to, penalty)| (to.as_str(), *penalty))
    }

    /// Whether `name` may be skipped under deadline/budget pressure.
    pub fn is_skippable(&self, name: &str) -> bool {
        self.skippable.contains(name)
    }

    /// Whether the ladder has any entries at all.
    pub fn is_empty(&self) -> bool {
        self.fallbacks.is_empty() && self.skippable.is_empty()
    }

    /// Full chain starting at `name` (exclusive), following fallbacks.
    pub fn chain_from(&self, name: &str) -> Vec<&str> {
        let mut chain = Vec::new();
        let mut cursor = name;
        while let Some((next, _)) = self.fallback_for(cursor) {
            if chain.contains(&next) || next == name {
                break; // defend against accidental cycles
            }
            chain.push(next);
            cursor = next;
        }
        chain
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_defaults_ladder() {
        let ladder = DegradationLadder::model_defaults();
        let (to, penalty) = ladder.fallback_for("sim-large").unwrap();
        assert_eq!(to, "sim-small");
        assert!((penalty - 0.08).abs() < 1e-9);
        assert_eq!(
            ladder.chain_from("sim-large"),
            vec!["sim-small", "sim-tiny"]
        );
        assert_eq!(ladder.fallback_for("sim-tiny"), None);
    }

    #[test]
    fn skippable_membership() {
        let ladder = DegradationLadder::new().with_skippable("guardrail");
        assert!(ladder.is_skippable("guardrail"));
        assert!(!ladder.is_skippable("writer"));
        assert!(!ladder.is_empty());
    }

    #[test]
    fn cycle_defense() {
        let ladder = DegradationLadder::new()
            .with_fallback("a", "b", 0.1)
            .with_fallback("b", "a", 0.1);
        assert_eq!(ladder.chain_from("a"), vec!["b"]);
    }

    #[test]
    fn note_serializes() {
        let note = DegradationNote {
            from: "sim-large".into(),
            to: Some("sim-small".into()),
            accuracy_penalty: 0.08,
            reason: "circuit open".into(),
        };
        let v = note.serialize();
        assert_eq!(v["from"], json!("sim-large"));
        assert_eq!(v["to"], json!("sim-small"));
        assert_eq!(v["reason"], json!("circuit open"));

        let skipped = DegradationNote {
            from: "guardrail".into(),
            to: None,
            accuracy_penalty: 0.0,
            reason: "deadline pressure".into(),
        };
        assert!(skipped.serialize()["to"].is_null());
    }
}
