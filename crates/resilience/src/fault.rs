//! Deterministic, seeded fault injection.
//!
//! A [`FaultPlan`] describes *how often* each class of fault fires; a
//! [`FaultInjector`] turns the plan into per-call decisions. Decisions are a
//! pure hash of `(seed, site, key)` — no clocks, no RNG state — so the same
//! plan over the same call keys yields the same faults regardless of thread
//! interleaving. Every fault that fires is appended to an in-memory log of
//! [`FaultRecord`]s so chaos tests can assert exactly which fault hit where.

use parking_lot::Mutex;
use std::fmt;

/// Where in the stack a fault is injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// Stream-fabric publish path: messages dropped, delayed, or duplicated.
    Publish,
    /// Agent processor execution: panics and slowdowns.
    Processor,
    /// Simulated model calls: transient failures and latency stalls.
    ModelCall,
    /// Data-source queries: transient unavailability.
    DataQuery,
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultSite::Publish => "publish",
            FaultSite::Processor => "processor",
            FaultSite::ModelCall => "model-call",
            FaultSite::DataQuery => "data-query",
        };
        f.write_str(s)
    }
}

/// A concrete fault decision returned by the injector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InjectedFault {
    /// Silently drop the message instead of delivering it.
    DropMessage,
    /// Deliver the message twice.
    DuplicateMessage,
    /// Delay delivery by the given number of simulated microseconds.
    DelayMessage { micros: u64 },
    /// Panic inside the agent processor (exercises crash recovery).
    PanicProcessor,
    /// Slow the processor down by the given number of microseconds.
    SlowProcessor { micros: u64 },
    /// Fail the model call with a transient error.
    FailCall,
    /// Stall the model call, inflating its latency.
    StallCall { micros: u64 },
    /// Fail the data-source query with a transient unavailability error.
    FailQuery,
}

impl fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InjectedFault::DropMessage => write!(f, "drop-message"),
            InjectedFault::DuplicateMessage => write!(f, "duplicate-message"),
            InjectedFault::DelayMessage { micros } => write!(f, "delay-message({micros}us)"),
            InjectedFault::PanicProcessor => write!(f, "panic-processor"),
            InjectedFault::SlowProcessor { micros } => write!(f, "slow-processor({micros}us)"),
            InjectedFault::FailCall => write!(f, "fail-call"),
            InjectedFault::StallCall { micros } => write!(f, "stall-call({micros}us)"),
            InjectedFault::FailQuery => write!(f, "fail-query"),
        }
    }
}

/// One fault that actually fired, tagged with its site and call key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRecord {
    /// The injection site.
    pub site: FaultSite,
    /// The caller-supplied key identifying the specific call.
    pub key: String,
    /// The fault that fired.
    pub fault: InjectedFault,
}

/// Seeded description of fault rates per injection site.
///
/// All rates are probabilities in `[0, 1]`. Within one site the rates are
/// interpreted as disjoint ranges over a single deterministic roll, so e.g.
/// `drop_rate + duplicate_rate + delay_rate` must stay ≤ 1 (enforced by
/// clamping at decision time).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed mixed into every fault decision.
    pub seed: u64,
    /// Probability a published message is dropped before delivery.
    pub drop_rate: f64,
    /// Probability a published message is delivered twice.
    pub duplicate_rate: f64,
    /// Probability a published message is delayed.
    pub delay_rate: f64,
    /// Delay applied when a delay fault fires.
    pub delay_micros: u64,
    /// Probability an agent processor invocation panics.
    pub panic_rate: f64,
    /// Probability an agent processor invocation runs slow.
    pub slow_rate: f64,
    /// Slowdown applied when a slow-processor fault fires.
    pub slow_micros: u64,
    /// Probability a model call fails transiently.
    pub model_fail_rate: f64,
    /// Probability a model call stalls.
    pub model_stall_rate: f64,
    /// Latency added when a model stall fires.
    pub stall_micros: u64,
    /// Probability a data-source query fails with `Unavailable`.
    pub query_fail_rate: f64,
}

impl FaultPlan {
    /// A plan that injects nothing (useful as a builder starting point).
    pub fn none(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_rate: 0.0,
            duplicate_rate: 0.0,
            delay_rate: 0.0,
            delay_micros: 2_000,
            panic_rate: 0.0,
            slow_rate: 0.0,
            slow_micros: 5_000,
            model_fail_rate: 0.0,
            model_stall_rate: 0.0,
            stall_micros: 5_000,
            query_fail_rate: 0.0,
        }
    }

    /// A moderately chaotic preset touching every site, parameterised by seed.
    pub fn chaotic(seed: u64) -> Self {
        FaultPlan {
            drop_rate: 0.05,
            duplicate_rate: 0.05,
            delay_rate: 0.10,
            panic_rate: 0.15,
            slow_rate: 0.10,
            model_fail_rate: 0.15,
            model_stall_rate: 0.10,
            query_fail_rate: 0.15,
            ..FaultPlan::none(seed)
        }
    }

    /// Sets the message-drop rate.
    pub fn with_drop_rate(mut self, rate: f64) -> Self {
        self.drop_rate = rate;
        self
    }

    /// Sets the message-duplication rate.
    pub fn with_duplicate_rate(mut self, rate: f64) -> Self {
        self.duplicate_rate = rate;
        self
    }

    /// Sets the message-delay rate and delay magnitude.
    pub fn with_delay(mut self, rate: f64, micros: u64) -> Self {
        self.delay_rate = rate;
        self.delay_micros = micros;
        self
    }

    /// Sets the processor panic rate.
    pub fn with_panic_rate(mut self, rate: f64) -> Self {
        self.panic_rate = rate;
        self
    }

    /// Sets the slow-processor rate and slowdown magnitude.
    pub fn with_slow(mut self, rate: f64, micros: u64) -> Self {
        self.slow_rate = rate;
        self.slow_micros = micros;
        self
    }

    /// Sets the transient model-call failure rate.
    pub fn with_model_fail_rate(mut self, rate: f64) -> Self {
        self.model_fail_rate = rate;
        self
    }

    /// Sets the model stall rate and stall magnitude.
    pub fn with_model_stall(mut self, rate: f64, micros: u64) -> Self {
        self.model_stall_rate = rate;
        self.stall_micros = micros;
        self
    }

    /// Sets the data-query failure rate.
    pub fn with_query_fail_rate(mut self, rate: f64) -> Self {
        self.query_fail_rate = rate;
        self
    }
}

/// Turns a [`FaultPlan`] into deterministic per-call fault decisions and
/// records every fault that fires.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    log: Mutex<Vec<FaultRecord>>,
}

/// SplitMix64 finalizer — good avalanche behaviour for cheap hashing.
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl FaultInjector {
    /// Creates an injector for the given plan.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            plan,
            log: Mutex::new(Vec::new()),
        }
    }

    /// The plan driving this injector.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Deterministic roll in `[0, 1)` for `(seed, site, key)`.
    fn roll(&self, site: FaultSite, key: &str) -> f64 {
        let site_salt = match site {
            FaultSite::Publish => 0x50_55_42,
            FaultSite::Processor => 0x50_52_4F,
            FaultSite::ModelCall => 0x4D_4F_44,
            FaultSite::DataQuery => 0x44_41_54,
        };
        let h = mix(self.plan.seed ^ mix(site_salt) ^ fnv1a(key.as_bytes()));
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    fn record(&self, site: FaultSite, key: &str, fault: InjectedFault) -> InjectedFault {
        self.log.lock().push(FaultRecord {
            site,
            key: key.to_string(),
            fault: fault.clone(),
        });
        fault
    }

    /// Whether any publish-site fault can ever fire. Callers on hot paths
    /// check this before building a fault key.
    pub fn publish_armed(&self) -> bool {
        self.plan.drop_rate > 0.0 || self.plan.duplicate_rate > 0.0 || self.plan.delay_rate > 0.0
    }

    /// Whether any processor-site fault can ever fire.
    pub fn processor_armed(&self) -> bool {
        self.plan.panic_rate > 0.0 || self.plan.slow_rate > 0.0
    }

    /// Whether any model-call fault can ever fire.
    pub fn model_armed(&self) -> bool {
        self.plan.model_fail_rate > 0.0 || self.plan.model_stall_rate > 0.0
    }

    /// Whether any data-query fault can ever fire.
    pub fn query_armed(&self) -> bool {
        self.plan.query_fail_rate > 0.0
    }

    /// Fault decision for a stream publish. Drop, duplicate, and delay are
    /// disjoint ranges over one roll.
    pub fn publish_fault(&self, key: &str) -> Option<InjectedFault> {
        if !self.publish_armed() {
            return None;
        }
        let p = self.roll(FaultSite::Publish, key);
        let drop_to = self.plan.drop_rate;
        let dup_to = drop_to + self.plan.duplicate_rate;
        let delay_to = dup_to + self.plan.delay_rate;
        let fault = if p < drop_to {
            InjectedFault::DropMessage
        } else if p < dup_to {
            InjectedFault::DuplicateMessage
        } else if p < delay_to {
            InjectedFault::DelayMessage {
                micros: self.plan.delay_micros,
            }
        } else {
            return None;
        };
        Some(self.record(FaultSite::Publish, key, fault))
    }

    /// Fault decision for an agent processor invocation.
    pub fn processor_fault(&self, key: &str) -> Option<InjectedFault> {
        if !self.processor_armed() {
            return None;
        }
        let p = self.roll(FaultSite::Processor, key);
        let panic_to = self.plan.panic_rate;
        let slow_to = panic_to + self.plan.slow_rate;
        let fault = if p < panic_to {
            InjectedFault::PanicProcessor
        } else if p < slow_to {
            InjectedFault::SlowProcessor {
                micros: self.plan.slow_micros,
            }
        } else {
            return None;
        };
        Some(self.record(FaultSite::Processor, key, fault))
    }

    /// Fault decision for a simulated model call.
    pub fn model_fault(&self, key: &str) -> Option<InjectedFault> {
        if !self.model_armed() {
            return None;
        }
        let p = self.roll(FaultSite::ModelCall, key);
        let fail_to = self.plan.model_fail_rate;
        let stall_to = fail_to + self.plan.model_stall_rate;
        let fault = if p < fail_to {
            InjectedFault::FailCall
        } else if p < stall_to {
            InjectedFault::StallCall {
                micros: self.plan.stall_micros,
            }
        } else {
            return None;
        };
        Some(self.record(FaultSite::ModelCall, key, fault))
    }

    /// Fault decision for a data-source query.
    pub fn query_fault(&self, key: &str) -> Option<InjectedFault> {
        if !self.query_armed() {
            return None;
        }
        let p = self.roll(FaultSite::DataQuery, key);
        if p < self.plan.query_fail_rate {
            Some(self.record(FaultSite::DataQuery, key, InjectedFault::FailQuery))
        } else {
            None
        }
    }

    /// All faults that have fired so far, in firing order.
    pub fn records(&self) -> Vec<FaultRecord> {
        self.log.lock().clone()
    }

    /// Number of fired faults at the given site.
    pub fn count(&self, site: FaultSite) -> usize {
        self.log.lock().iter().filter(|r| r.site == site).count()
    }

    /// Total number of fired faults across all sites.
    pub fn total(&self) -> usize {
        self.log.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic() {
        let a = FaultInjector::new(FaultPlan::chaotic(42));
        let b = FaultInjector::new(FaultPlan::chaotic(42));
        for i in 0..200 {
            let key = format!("agent-x#{i}");
            assert_eq!(a.processor_fault(&key), b.processor_fault(&key));
            assert_eq!(a.publish_fault(&key), b.publish_fault(&key));
            assert_eq!(a.model_fault(&key), b.model_fault(&key));
            assert_eq!(a.query_fault(&key), b.query_fault(&key));
        }
        assert_eq!(a.records(), b.records());
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultInjector::new(FaultPlan::chaotic(1));
        let b = FaultInjector::new(FaultPlan::chaotic(2));
        let mut same = 0;
        let mut diff = 0;
        for i in 0..500 {
            let key = format!("k{i}");
            if a.processor_fault(&key) == b.processor_fault(&key) {
                same += 1;
            } else {
                diff += 1;
            }
        }
        // At 15% panic + 10% slow rates, two seeds must disagree sometimes.
        assert!(diff > 0, "seeds 1 and 2 produced identical decisions");
        assert!(same > 0);
    }

    #[test]
    fn none_plan_injects_nothing() {
        let inj = FaultInjector::new(FaultPlan::none(7));
        for i in 0..100 {
            let key = format!("k{i}");
            assert!(inj.publish_fault(&key).is_none());
            assert!(inj.processor_fault(&key).is_none());
            assert!(inj.model_fault(&key).is_none());
            assert!(inj.query_fault(&key).is_none());
        }
        assert_eq!(inj.total(), 0);
    }

    #[test]
    fn rates_are_roughly_respected() {
        let inj = FaultInjector::new(FaultPlan::none(9).with_panic_rate(0.25));
        let n = 2_000;
        for i in 0..n {
            inj.processor_fault(&format!("call#{i}"));
        }
        let fired = inj.count(FaultSite::Processor) as f64 / n as f64;
        assert!(
            (fired - 0.25).abs() < 0.05,
            "expected ~25% panic faults, got {:.1}%",
            fired * 100.0
        );
    }

    #[test]
    fn records_tag_site_and_key() {
        let inj = FaultInjector::new(FaultPlan::none(3).with_query_fail_rate(1.0));
        assert_eq!(inj.query_fault("hr:source"), Some(InjectedFault::FailQuery));
        let recs = inj.records();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].site, FaultSite::DataQuery);
        assert_eq!(recs[0].key, "hr:source");
        assert_eq!(recs[0].fault, InjectedFault::FailQuery);
        assert_eq!(format!("{}", recs[0].fault), "fail-query");
        assert_eq!(format!("{}", recs[0].site), "data-query");
    }

    #[test]
    fn publish_ranges_are_disjoint() {
        // With rates summing to 1.0 every publish must fault with exactly one kind.
        let inj = FaultInjector::new(
            FaultPlan::none(11)
                .with_drop_rate(0.3)
                .with_duplicate_rate(0.3)
                .with_delay(0.4, 1_000),
        );
        let mut drops = 0;
        let mut dups = 0;
        let mut delays = 0;
        for i in 0..300 {
            match inj.publish_fault(&format!("m{i}")) {
                Some(InjectedFault::DropMessage) => drops += 1,
                Some(InjectedFault::DuplicateMessage) => dups += 1,
                Some(InjectedFault::DelayMessage { .. }) => delays += 1,
                other => panic!("unexpected decision {other:?}"),
            }
        }
        assert!(drops > 0 && dups > 0 && delays > 0);
        assert_eq!(drops + dups + delays, 300);
    }
}
