//! Resilience layer: fault injection + the policies that survive the faults.
//!
//! Enterprise deployments of the blueprint architecture (§VI) run agents and
//! data sources that fail, stall, and drop messages. This crate supplies two
//! halves of the robustness story:
//!
//! 1. **Fault injection** ([`FaultPlan`] / [`FaultInjector`]): deterministic,
//!    seeded fault decisions for every layer of the stack — message
//!    drop/delay/duplication on the stream fabric, processor panics and
//!    slowdowns in agent containers, transient model-call failures and
//!    stalls, and data-source outages. Every injected fault is recorded with
//!    its site and key so chaos tests can assert exactly which fault fired.
//!
//! 2. **Resilience policies**: [`RetryPolicy`] (exponential backoff with
//!    deterministic jitter and a retry budget), [`CircuitBreaker`] /
//!    [`BreakerRegistry`] (closed → open → half-open per agent, so planners
//!    can route around unhealthy agents), and [`DegradationLadder`]
//!    (premium-tier fallback with an explicit accuracy penalty, plus
//!    skippable optional nodes under budget pressure).
//!
//! The crate is a leaf: it depends on nothing else in the workspace, so the
//! streams, agents, datastore, llmsim, registry, and coordinator crates can
//! all consume it without cycles.

mod breaker;
mod degrade;
mod fault;
mod retry;

pub use breaker::{BreakerConfig, BreakerRegistry, BreakerState, CircuitBreaker};
pub use degrade::{DegradationLadder, DegradationNote};
pub use fault::{FaultInjector, FaultPlan, FaultRecord, FaultSite, InjectedFault};
pub use retry::RetryPolicy;
