//! Property-based tests for [`RetryPolicy`] invariants.

use blueprint_resilience::RetryPolicy;
use proptest::prelude::*;

fn policy_strategy() -> impl Strategy<Value = RetryPolicy> {
    (
        (
            1u32..8,       // max_attempts
            0u64..50_000,  // base_delay_micros
            1.0f64..4.0,   // multiplier
            0u64..200_000, // max_delay_micros
        ),
        (
            0.0f64..0.9,     // jitter_frac
            0u64..1_000_000, // retry_budget_micros
            0u64..u64::MAX,  // seed
        ),
    )
        .prop_map(
            |((max_attempts, base, mult, cap), (jitter, budget, seed))| RetryPolicy {
                max_attempts,
                base_delay_micros: base,
                multiplier: mult,
                max_delay_micros: cap,
                jitter_frac: jitter,
                retry_budget_micros: budget,
                seed,
            },
        )
}

proptest! {
    /// Raw backoff is monotone non-decreasing in the attempt number until it
    /// saturates at the cap, and never exceeds the cap.
    #[test]
    fn raw_backoff_is_monotone_up_to_cap(policy in policy_strategy()) {
        let mut prev = 0u64;
        for attempt in 1..=16u32 {
            let delay = policy.raw_backoff_micros(attempt);
            prop_assert!(
                delay >= prev,
                "backoff shrank: attempt {attempt} gave {delay} after {prev}"
            );
            prop_assert!(delay <= policy.max_delay_micros, "attempt {attempt} exceeds cap");
            prev = delay;
        }
    }

    /// Jittered backoff stays within ±jitter_frac of the raw delay and is
    /// deterministic for a given (seed, attempt).
    #[test]
    fn jitter_is_bounded_and_deterministic(policy in policy_strategy(), attempt in 1u32..12) {
        let raw = policy.raw_backoff_micros(attempt) as f64;
        let jittered = policy.backoff_micros(attempt);
        prop_assert_eq!(jittered, policy.backoff_micros(attempt));
        let lo = (raw * (1.0 - policy.jitter_frac)).floor() as u64;
        let hi = (raw * (1.0 + policy.jitter_frac)).ceil() as u64;
        prop_assert!(
            (lo..=hi).contains(&jittered),
            "jittered {} outside [{}, {}] for raw {}",
            jittered, lo, hi, raw
        );
    }

    /// Walking the policy to exhaustion never grants more total delay than
    /// the retry budget, and never more than max_attempts - 1 retries.
    #[test]
    fn total_granted_delay_respects_retry_budget(policy in policy_strategy()) {
        let mut attempts = 1u32;
        let mut spent = 0u64;
        let mut retries = 0u32;
        while let Some(delay) = policy.delay_before(attempts, spent) {
            spent = spent.checked_add(delay).expect("granted delays must not overflow");
            prop_assert!(
                spent <= policy.retry_budget_micros,
                "cumulative delay {} blew the budget {}",
                spent, policy.retry_budget_micros
            );
            attempts += 1;
            retries += 1;
            prop_assert!(retries < policy.max_attempts, "granted too many retries");
        }
        prop_assert!(attempts <= policy.max_attempts);
    }

    /// A policy with zero jitter is exactly its raw schedule.
    #[test]
    fn zero_jitter_means_exact_schedule(mut policy in policy_strategy(), attempt in 0u32..12) {
        policy.jitter_frac = 0.0;
        prop_assert_eq!(policy.backoff_micros(attempt), policy.raw_backoff_micros(attempt));
    }
}
