//! Trace exporters: Chrome `trace_event` JSON and a plain-text timeline.
//!
//! A [`Trace`] is an immutable snapshot taken from a
//! [`Tracer`](crate::Tracer). The Chrome exporter emits the JSON object
//! format (`{"traceEvents": [...]}`) with complete (`ph: "X"`) and instant
//! (`ph: "i"`) events, loadable in `chrome://tracing` or Perfetto. Because
//! Chrome renders one horizontal lane per `tid`, overlapping spans are
//! greedily packed into lanes so concurrent plan nodes show up side by side.

use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;

use serde::{Deserialize, Serialize};
use serde_json::{json, Value};

use crate::span::{SpanId, SpanKind, SpanRecord};

/// An immutable, `(start, id)`-ordered snapshot of recorded spans.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Trace {
    /// Every completed record, sorted by `(start_micros, id)`.
    pub spans: Vec<SpanRecord>,
}

impl Trace {
    /// Records with no parent, in trace order.
    pub fn roots(&self) -> Vec<&SpanRecord> {
        self.spans.iter().filter(|s| s.parent.is_none()).collect()
    }

    /// Direct children of `parent`, in trace order.
    pub fn children_of(&self, parent: SpanId) -> Vec<&SpanRecord> {
        self.spans
            .iter()
            .filter(|s| s.parent == Some(parent))
            .collect()
    }

    /// The first record with the given name, if any.
    pub fn find(&self, name: &str) -> Option<&SpanRecord> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// The Chrome `trace_event` JSON object for this trace.
    ///
    /// Sim-clock microseconds map directly onto the format's `ts`/`dur`
    /// fields (which are also microseconds). All events share `pid` 1;
    /// `tid` is a display lane assigned greedily so overlapping spans never
    /// share a lane.
    pub fn to_chrome_json(&self) -> Value {
        // Greedy lane packing: walk spans in (start, id) order and reuse the
        // first lane whose previous occupant has already ended.
        let mut lane_free_at: Vec<u64> = Vec::new();
        let mut lanes: BTreeMap<SpanId, usize> = BTreeMap::new();
        for span in &self.spans {
            if span.kind == SpanKind::Instant {
                continue;
            }
            let lane = lane_free_at
                .iter()
                .position(|&free| free <= span.start_micros)
                .unwrap_or_else(|| {
                    lane_free_at.push(0);
                    lane_free_at.len() - 1
                });
            lane_free_at[lane] = span.end_micros.max(span.start_micros + 1);
            lanes.insert(span.id, lane);
        }

        let events: Vec<Value> = self
            .spans
            .iter()
            .map(|span| {
                let mut args = serde_json::Map::new();
                args.insert("id".into(), json!(span.id.0));
                if let Some(parent) = span.parent {
                    args.insert("parent".into(), json!(parent.0));
                }
                for (k, v) in &span.attrs {
                    args.insert(k.clone(), json!(v));
                }
                // Instants render in their parent's lane when they have one.
                let lane = lanes
                    .get(&span.id)
                    .copied()
                    .or_else(|| span.parent.and_then(|p| lanes.get(&p).copied()));
                let mut event = json!({
                    "name": span.name,
                    "cat": span.category,
                    "ts": span.start_micros,
                    "pid": 1,
                    "tid": lane.unwrap_or(0),
                    "args": Value::Object(args),
                });
                let obj = event.as_object_mut().unwrap();
                match span.kind {
                    SpanKind::Span => {
                        obj.insert("ph".into(), json!("X"));
                        obj.insert("dur".into(), json!(span.duration_micros()));
                    }
                    SpanKind::Instant => {
                        obj.insert("ph".into(), json!("i"));
                        obj.insert("s".into(), json!("t"));
                    }
                }
                event
            })
            .collect();

        json!({
            "traceEvents": events,
            "displayTimeUnit": "ms",
        })
    }

    /// Writes [`Trace::to_chrome_json`] to `path`.
    pub fn write_chrome_trace(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let mut file = std::fs::File::create(path)?;
        let text = serde_json::to_string_pretty(&self.to_chrome_json())
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        file.write_all(text.as_bytes())?;
        file.write_all(b"\n")
    }

    /// An indented plain-text timeline, one line per record:
    ///
    /// ```text
    /// [       0..  45000] task:t-1 (coordinator)
    /// [       0..  15000]   node:extract (coordinator) agent=extractor
    /// ```
    pub fn render_text(&self) -> String {
        let mut depth: BTreeMap<SpanId, usize> = BTreeMap::new();
        let mut out = String::new();
        for span in &self.spans {
            let d = span
                .parent
                .and_then(|p| depth.get(&p).copied())
                .map_or(0, |pd| pd + 1);
            depth.insert(span.id, d);
            let indent = "  ".repeat(d);
            let attrs: Vec<String> = span.attrs.iter().map(|(k, v)| format!("{k}={v}")).collect();
            let attrs = if attrs.is_empty() {
                String::new()
            } else {
                format!(" {}", attrs.join(" "))
            };
            let marker = match span.kind {
                SpanKind::Span => format!("{:>8}..{:>8}", span.start_micros, span.end_micros),
                SpanKind::Instant => format!("{:>8} @      ", span.start_micros),
            };
            out.push_str(&format!(
                "[{marker}] {indent}{} ({}){attrs}\n",
                span.name, span.category
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimClock;
    use crate::span::Tracer;

    fn sample_trace() -> Trace {
        let clock = SimClock::new();
        let t = Tracer::new(clock.clone());
        let root = t.span("coordinator", "task:t-1");
        let root_id = root.id().unwrap();
        let mut a = t.child_span("coordinator", "node:a", root_id);
        a.attr("agent", "extractor");
        let b = t.child_span("coordinator", "node:b", root_id);
        clock.advance_micros(10);
        t.instant("coordinator", "retry", Some(root_id));
        drop(a);
        clock.advance_micros(5);
        drop(b);
        drop(root);
        t.snapshot()
    }

    #[test]
    fn tree_navigation() {
        let trace = sample_trace();
        let roots = trace.roots();
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].name, "task:t-1");
        let children = trace.children_of(roots[0].id);
        assert_eq!(children.len(), 3); // node:a, node:b, retry instant
        assert!(trace.find("node:b").is_some());
    }

    fn named<'a>(events: &'a [Value], name: &str) -> &'a Value {
        events
            .iter()
            .find(|e| e["name"].as_str() == Some(name))
            .unwrap()
    }

    #[test]
    fn chrome_json_shape() {
        let trace = sample_trace();
        let doc = trace.to_chrome_json();
        let events = doc["traceEvents"].as_array().unwrap();
        assert_eq!(events.len(), trace.spans.len());
        let task = named(events, "task:t-1");
        assert_eq!(task["ph"], json!("X"));
        assert_eq!(task["ts"], json!(0));
        assert_eq!(task["dur"], json!(15));
        assert_eq!(task["pid"], json!(1));
        let retry = named(events, "retry");
        assert_eq!(retry["ph"], json!("i"));
        assert_eq!(retry["ts"], json!(10));
        let a = named(events, "node:a");
        assert_eq!(a["args"]["agent"], json!("extractor"));
        assert_eq!(a["args"]["parent"], task["args"]["id"]);
    }

    #[test]
    fn overlapping_spans_get_distinct_lanes() {
        let trace = sample_trace();
        let doc = trace.to_chrome_json();
        let events = doc["traceEvents"].as_array().unwrap();
        let lane = |name: &str| named(events, name)["tid"].as_u64().unwrap();
        // task, node:a, node:b all overlap → three distinct lanes.
        let lanes = [lane("task:t-1"), lane("node:a"), lane("node:b")];
        assert_eq!(
            lanes
                .iter()
                .collect::<std::collections::BTreeSet<_>>()
                .len(),
            3
        );
    }

    #[test]
    fn sequential_spans_share_a_lane() {
        let clock = SimClock::new();
        let t = Tracer::new(clock.clone());
        let a = t.span("test", "a");
        clock.advance_micros(5);
        drop(a);
        let b = t.span("test", "b");
        clock.advance_micros(5);
        drop(b);
        let doc = t.snapshot().to_chrome_json();
        let events = doc["traceEvents"].as_array().unwrap();
        assert_eq!(events[0]["tid"], events[1]["tid"]);
    }

    #[test]
    fn text_timeline_indents_children() {
        let text = sample_trace().render_text();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].contains("task:t-1"));
        assert!(lines[1].contains("  node:a"));
        assert!(lines[1].contains("agent=extractor"));
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn write_chrome_trace_round_trips() {
        let trace = sample_trace();
        let dir = std::env::temp_dir().join("blueprint-observability-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        trace.write_chrome_trace(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let parsed: Value = serde_json::from_str(&text).unwrap();
        assert_eq!(parsed, trace.to_chrome_json());
        std::fs::remove_file(&path).ok();
    }
}
