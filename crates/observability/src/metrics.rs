//! Lock-free metrics: counters, gauges, and histograms over plain atomics.
//!
//! A [`MetricsRegistry`] maps instrument names (convention:
//! `blueprint.<crate>.<name>`) to atomic cells. Components resolve their
//! instruments **once** at wiring time — [`Counter`], [`Gauge`], and
//! [`Histogram`] are cheap cloneable handles directly onto the cells — so
//! the hot path is a single relaxed `fetch_add` with no map lookup and no
//! lock, matching the `StatCells` idiom the stream store already uses.
//!
//! A *disarmed* registry (the default) hands out inert instruments whose
//! operations are a no-op behind an `Option` check, so instrumented code
//! costs nothing when metrics are off.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

/// Monotonic event counter.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Option<Arc<AtomicU64>>,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.cell {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 when disarmed).
    pub fn get(&self) -> u64 {
        self.cell.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// Point-in-time level, e.g. queue depth.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    cell: Option<Arc<AtomicI64>>,
}

impl Gauge {
    /// Overwrites the level.
    pub fn set(&self, value: i64) {
        if let Some(cell) = &self.cell {
            cell.store(value, Ordering::Relaxed);
        }
    }

    /// Adjusts the level by `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        if let Some(cell) = &self.cell {
            cell.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Current level (0 when disarmed).
    pub fn get(&self) -> i64 {
        self.cell.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// Power-of-two bucket index: values land in bucket `b` when
/// `2^(b-1) <= value < 2^b` (value 0 lands in bucket 0).
fn bucket_index(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i`: `2^i - 1` (bucket 0 holds only 0).
fn bucket_upper(i: usize) -> u64 {
    if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// Cells behind one histogram: count/sum plus 65 power-of-two buckets.
#[derive(Debug)]
struct HistCells {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; 65],
}

impl HistCells {
    fn new() -> Self {
        HistCells {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn record(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                let n = c.load(Ordering::Relaxed);
                (n > 0).then(|| (bucket_upper(i), n))
            })
            .collect();
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Distribution of recorded values (e.g. per-node latencies).
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    cells: Option<Arc<HistCells>>,
}

impl Histogram {
    /// Records one observation.
    pub fn record(&self, value: u64) {
        if let Some(cells) = &self.cells {
            cells.record(value);
        }
    }

    /// Number of observations so far (0 when disarmed).
    pub fn count(&self) -> u64 {
        self.cells
            .as_ref()
            .map_or(0, |c| c.count.load(Ordering::Relaxed))
    }
}

/// Readout of one histogram.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Non-empty power-of-two buckets as `(inclusive upper bound, count)`.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean observation (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Full readout of a registry, with deterministically ordered names.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counter values by instrument name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge levels by instrument name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram readouts by instrument name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Counter value by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge level by name (0 when absent).
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Renders `name value` lines, one instrument per line, sorted by name.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            out.push_str(&format!("{name} {v}\n"));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("{name} {v}\n"));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!(
                "{name} count={} sum={} min={} max={} mean={:.1}\n",
                h.count,
                h.sum,
                h.min,
                h.max,
                h.mean()
            ));
        }
        out
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: RwLock<BTreeMap<String, Arc<AtomicI64>>>,
    histograms: RwLock<BTreeMap<String, Arc<HistCells>>>,
}

/// Registry of named instruments.
///
/// Disarmed by default ([`MetricsRegistry::disarmed`], [`Default`]); arm
/// with [`MetricsRegistry::new`]. Instrument names follow
/// `blueprint.<crate>.<name>`.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Option<Arc<RegistryInner>>,
}

impl MetricsRegistry {
    /// An armed, empty registry.
    pub fn new() -> Self {
        MetricsRegistry {
            inner: Some(Arc::new(RegistryInner::default())),
        }
    }

    /// A disarmed registry: instruments it hands out are inert.
    pub fn disarmed() -> Self {
        MetricsRegistry::default()
    }

    /// True when instruments record.
    pub fn is_armed(&self) -> bool {
        self.inner.is_some()
    }

    /// Resolves (registering on first use) the named counter.
    pub fn counter(&self, name: &str) -> Counter {
        let Some(inner) = &self.inner else {
            return Counter::default();
        };
        if let Some(cell) = inner.counters.read().get(name) {
            return Counter {
                cell: Some(Arc::clone(cell)),
            };
        }
        let mut map = inner.counters.write();
        let cell = map
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)));
        Counter {
            cell: Some(Arc::clone(cell)),
        }
    }

    /// Resolves (registering on first use) the named gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        let Some(inner) = &self.inner else {
            return Gauge::default();
        };
        if let Some(cell) = inner.gauges.read().get(name) {
            return Gauge {
                cell: Some(Arc::clone(cell)),
            };
        }
        let mut map = inner.gauges.write();
        let cell = map
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicI64::new(0)));
        Gauge {
            cell: Some(Arc::clone(cell)),
        }
    }

    /// Resolves (registering on first use) the named histogram.
    pub fn histogram(&self, name: &str) -> Histogram {
        let Some(inner) = &self.inner else {
            return Histogram::default();
        };
        if let Some(cells) = inner.histograms.read().get(name) {
            return Histogram {
                cells: Some(Arc::clone(cells)),
            };
        }
        let mut map = inner.histograms.write();
        let cells = map
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(HistCells::new()));
        Histogram {
            cells: Some(Arc::clone(cells)),
        }
    }

    /// Reads every instrument. Disarmed registries yield an empty snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let Some(inner) = &self.inner else {
            return MetricsSnapshot::default();
        };
        MetricsSnapshot {
            counters: inner
                .counters
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            gauges: inner
                .gauges
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            histograms: inner
                .histograms
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_instruments_are_inert() {
        let m = MetricsRegistry::disarmed();
        assert!(!m.is_armed());
        let c = m.counter("blueprint.test.events");
        c.inc();
        assert_eq!(c.get(), 0);
        let g = m.gauge("blueprint.test.depth");
        g.set(5);
        assert_eq!(g.get(), 0);
        let h = m.histogram("blueprint.test.latency");
        h.record(10);
        assert_eq!(h.count(), 0);
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn counters_share_cells_by_name() {
        let m = MetricsRegistry::new();
        let a = m.counter("blueprint.test.events");
        let b = m.counter("blueprint.test.events");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(m.snapshot().counter("blueprint.test.events"), 3);
    }

    #[test]
    fn gauges_track_levels() {
        let m = MetricsRegistry::new();
        let g = m.gauge("blueprint.test.depth");
        g.set(4);
        g.add(-1);
        assert_eq!(g.get(), 3);
        assert_eq!(m.snapshot().gauge("blueprint.test.depth"), 3);
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let m = MetricsRegistry::new();
        let h = m.histogram("blueprint.test.latency");
        for v in [0, 1, 2, 3, 1000] {
            h.record(v);
        }
        let snap = m.snapshot().histograms["blueprint.test.latency"].clone();
        assert_eq!(snap.count, 5);
        assert_eq!(snap.sum, 1006);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, 1000);
        assert!((snap.mean() - 201.2).abs() < 1e-9);
        // 0 → bucket 0; 1 → [1,1]; 2 and 3 → [2,3]; 1000 → [512,1023].
        assert_eq!(snap.buckets, vec![(0, 1), (1, 1), (3, 2), (1023, 1)]);
    }

    #[test]
    fn snapshot_is_deterministically_ordered() {
        let m = MetricsRegistry::new();
        m.counter("blueprint.b.x").inc();
        m.counter("blueprint.a.x").inc();
        let names: Vec<_> = m.snapshot().counters.keys().cloned().collect();
        assert_eq!(names, ["blueprint.a.x", "blueprint.b.x"]);
        assert!(m.snapshot().render_text().starts_with("blueprint.a.x 1\n"));
    }

    #[test]
    fn concurrent_updates_are_exact() {
        let m = MetricsRegistry::new();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = m.counter("blueprint.test.events");
                let h = m.histogram("blueprint.test.latency");
                std::thread::spawn(move || {
                    for i in 0..1_000 {
                        c.inc();
                        h.record(i);
                    }
                })
            })
            .collect();
        for t in handles {
            t.join().unwrap();
        }
        let snap = m.snapshot();
        assert_eq!(snap.counter("blueprint.test.events"), 8_000);
        assert_eq!(snap.histograms["blueprint.test.latency"].count, 8_000);
    }
}
