//! Observability for the blueprint runtime: sim-clock tracing spans, a
//! lock-free metrics registry, and trace exporters.
//!
//! Everything here is deterministic by construction: spans are stamped from
//! the shared [`SimClock`] (the same virtual clock every component charges
//! latency to), so a deterministic execution produces a byte-stable trace
//! that tests can compare exactly. Wall-clock capture is available behind
//! the `wallclock` feature for profiling real runs.
//!
//! The two entry points are [`Tracer`] (span trees, exported via [`Trace`]
//! as Chrome `trace_event` JSON or a text timeline) and [`MetricsRegistry`]
//! (named atomic counters/gauges/histograms, read out as a
//! [`MetricsSnapshot`]). Both are cheap cloneable handles that default to a
//! *disarmed* state where every operation is a no-op, so instrumentation can
//! stay wired in permanently at negligible cost.
//!
//! ```
//! use blueprint_observability::{Observability, SimClock};
//!
//! let clock = SimClock::new();
//! let obs = Observability::armed(clock.clone());
//! let span = obs.tracer.span("example", "work");
//! clock.advance_micros(25);
//! obs.metrics.counter("blueprint.example.items").inc();
//! span.end();
//!
//! let trace = obs.tracer.snapshot();
//! assert_eq!(trace.spans[0].duration_micros(), 25);
//! assert_eq!(obs.metrics.snapshot().counter("blueprint.example.items"), 1);
//! ```

pub mod clock;
pub mod export;
pub mod metrics;
pub mod span;

pub use clock::SimClock;
pub use export::Trace;
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
pub use span::{SpanHandle, SpanId, SpanKind, SpanRecord, Tracer};

/// A tracer and a metrics registry travelling together — the bundle the
/// runtime threads through every layer. Both halves are independently
/// armable, so metrics can be on while tracing is off and vice versa.
#[derive(Clone, Default)]
pub struct Observability {
    /// Span recorder (disarmed by default).
    pub tracer: Tracer,
    /// Instrument registry (disarmed by default).
    pub metrics: MetricsRegistry,
}

impl Observability {
    /// Both halves armed, spans stamped from `clock`.
    pub fn armed(clock: SimClock) -> Self {
        Observability {
            tracer: Tracer::new(clock),
            metrics: MetricsRegistry::new(),
        }
    }

    /// Both halves disarmed: every operation is a no-op.
    pub fn disarmed() -> Self {
        Observability::default()
    }

    /// True when either half records anything.
    pub fn is_armed(&self) -> bool {
        self.tracer.is_armed() || self.metrics.is_armed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_bundle_is_inert() {
        let obs = Observability::disarmed();
        assert!(!obs.is_armed());
        obs.tracer.span("test", "x").end();
        obs.metrics.counter("blueprint.test.x").inc();
        assert!(obs.tracer.is_empty());
        assert_eq!(obs.metrics.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn armed_bundle_records_both_halves() {
        let clock = SimClock::new();
        let obs = Observability::armed(clock.clone());
        assert!(obs.is_armed());
        let span = obs.tracer.span("test", "x");
        clock.advance_micros(3);
        span.end();
        obs.metrics.counter("blueprint.test.x").inc();
        assert_eq!(obs.tracer.len(), 1);
        assert_eq!(obs.metrics.snapshot().counter("blueprint.test.x"), 1);
    }
}
