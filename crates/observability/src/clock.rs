//! Simulated clock shared by the whole runtime.
//!
//! The blueprint accounts for quality-of-service (latency budgets, projected
//! costs) deterministically: components charge simulated time to a shared
//! [`SimClock`] instead of reading the wall clock. This keeps every test and
//! figure-regeneration run bit-for-bit reproducible while still letting the
//! Criterion benches measure real wall time where that is the point.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically advancing virtual clock measured in microseconds.
///
/// Cloning a `SimClock` yields a handle onto the same underlying instant, so
/// a single clock can be threaded through agents, planners, and the budget.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    micros: Arc<AtomicU64>,
}

impl SimClock {
    /// Creates a clock starting at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a clock starting at the given microsecond offset.
    pub fn starting_at(micros: u64) -> Self {
        Self {
            micros: Arc::new(AtomicU64::new(micros)),
        }
    }

    /// Returns the current simulated time in microseconds.
    pub fn now_micros(&self) -> u64 {
        self.micros.load(Ordering::SeqCst)
    }

    /// Returns the current simulated time in milliseconds (truncated).
    pub fn now_millis(&self) -> u64 {
        self.now_micros() / 1_000
    }

    /// Advances the clock by `delta` microseconds and returns the new time.
    pub fn advance_micros(&self, delta: u64) -> u64 {
        self.micros.fetch_add(delta, Ordering::SeqCst) + delta
    }

    /// Advances the clock by `delta` milliseconds and returns the new time in
    /// microseconds.
    pub fn advance_millis(&self, delta: u64) -> u64 {
        self.advance_micros(delta.saturating_mul(1_000))
    }

    /// Elapsed microseconds since `earlier_micros` (saturating at zero).
    pub fn elapsed_since(&self, earlier_micros: u64) -> u64 {
        self.now_micros().saturating_sub(earlier_micros)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        assert_eq!(SimClock::new().now_micros(), 0);
    }

    #[test]
    fn starting_at_offsets() {
        assert_eq!(SimClock::starting_at(42).now_micros(), 42);
    }

    #[test]
    fn advance_accumulates() {
        let c = SimClock::new();
        assert_eq!(c.advance_micros(10), 10);
        assert_eq!(c.advance_micros(5), 15);
        assert_eq!(c.now_micros(), 15);
    }

    #[test]
    fn advance_millis_scales() {
        let c = SimClock::new();
        c.advance_millis(3);
        assert_eq!(c.now_micros(), 3_000);
        assert_eq!(c.now_millis(), 3);
    }

    #[test]
    fn clones_share_state() {
        let a = SimClock::new();
        let b = a.clone();
        a.advance_micros(7);
        assert_eq!(b.now_micros(), 7);
    }

    #[test]
    fn elapsed_since_saturates() {
        let c = SimClock::new();
        c.advance_micros(5);
        assert_eq!(c.elapsed_since(2), 3);
        assert_eq!(c.elapsed_since(100), 0);
    }

    #[test]
    fn advance_from_many_threads_is_consistent() {
        let c = SimClock::new();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..1_000 {
                        c.advance_micros(1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.now_micros(), 8_000);
    }
}
