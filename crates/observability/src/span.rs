//! Sim-clock tracing spans.
//!
//! A [`Tracer`] records [`SpanRecord`]s stamped from the shared
//! [`SimClock`]: because every component charges simulated
//! time instead of reading the wall clock, a deterministic execution yields a
//! byte-stable trace — identical span names, parentage, and timestamps on
//! every run — which tests can assert exactly. Wall-clock capture exists for
//! profiling real runs but is gated behind the `wallclock` feature so the
//! default build keeps the determinism guarantee.
//!
//! The tracer is a handle: cloning is cheap, and a *disarmed* tracer (the
//! default) turns every operation into a no-op on an `Option` check, so
//! instrumented hot paths cost nothing when tracing is off.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::clock::SimClock;
use crate::export::Trace;

/// Identifier of one recorded span, unique within its tracer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SpanId(pub u64);

impl std::fmt::Display for SpanId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// What kind of record a [`SpanRecord`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpanKind {
    /// An interval with a start and an end.
    Span,
    /// A point-in-time event (`start == end`).
    Instant,
}

/// One completed span or instant event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Tracer-unique id, assigned in span *start* order.
    pub id: SpanId,
    /// Parent span, when this span is part of a tree.
    pub parent: Option<SpanId>,
    /// Span name, e.g. `node:n1`.
    pub name: String,
    /// Emitting subsystem, e.g. `coordinator` (the crate-name convention
    /// mirrors the `blueprint.<crate>.<name>` instrument convention).
    pub category: String,
    /// Interval or instant.
    pub kind: SpanKind,
    /// Sim-clock start, microseconds.
    pub start_micros: u64,
    /// Sim-clock end, microseconds (`== start_micros` for instants).
    pub end_micros: u64,
    /// Sorted key/value annotations (sorted so traces are byte-stable).
    pub attrs: BTreeMap<String, String>,
    /// Wall-clock start in nanoseconds since the tracer was armed. Only
    /// captured under the `wallclock` feature; always serialized so the
    /// trace schema is feature-independent.
    pub wall_start_nanos: u64,
    /// Wall-clock end in nanoseconds since the tracer was armed.
    pub wall_end_nanos: u64,
}

impl SpanRecord {
    /// Sim-clock duration in microseconds.
    pub fn duration_micros(&self) -> u64 {
        self.end_micros.saturating_sub(self.start_micros)
    }
}

struct TracerInner {
    clock: SimClock,
    next_id: AtomicU64,
    spans: Mutex<Vec<SpanRecord>>,
    #[cfg(feature = "wallclock")]
    wall_epoch: std::time::Instant,
}

impl TracerInner {
    fn wall_nanos(&self) -> u64 {
        #[cfg(feature = "wallclock")]
        {
            self.wall_epoch.elapsed().as_nanos() as u64
        }
        #[cfg(not(feature = "wallclock"))]
        {
            0
        }
    }
}

/// Records spans stamped from the simulated clock.
///
/// Disarmed by default ([`Tracer::disarmed`], [`Default`]): every call is a
/// no-op. Arm with [`Tracer::new`], passing the runtime's shared clock.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl Tracer {
    /// An armed tracer stamping spans from `clock`.
    pub fn new(clock: SimClock) -> Self {
        Tracer {
            inner: Some(Arc::new(TracerInner {
                clock,
                next_id: AtomicU64::new(1),
                spans: Mutex::new(Vec::new()),
                #[cfg(feature = "wallclock")]
                wall_epoch: std::time::Instant::now(),
            })),
        }
    }

    /// A disarmed tracer: every operation is a no-op.
    pub fn disarmed() -> Self {
        Tracer::default()
    }

    /// True when spans are being recorded.
    pub fn is_armed(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a root span. The span records itself when dropped (or via
    /// [`SpanHandle::end`]).
    pub fn span(&self, category: &str, name: impl Into<String>) -> SpanHandle {
        self.open(category, name, None)
    }

    /// Opens a span under `parent`.
    pub fn child_span(
        &self,
        category: &str,
        name: impl Into<String>,
        parent: SpanId,
    ) -> SpanHandle {
        self.open(category, name, Some(parent))
    }

    /// Records a zero-duration instant event.
    pub fn instant(&self, category: &str, name: impl Into<String>, parent: Option<SpanId>) {
        let Some(inner) = &self.inner else { return };
        let now = inner.clock.now_micros();
        let wall = inner.wall_nanos();
        let record = SpanRecord {
            id: SpanId(inner.next_id.fetch_add(1, Ordering::Relaxed)),
            parent,
            name: name.into(),
            category: category.to_string(),
            kind: SpanKind::Instant,
            start_micros: now,
            end_micros: now,
            attrs: BTreeMap::new(),
            wall_start_nanos: wall,
            wall_end_nanos: wall,
        };
        inner.spans.lock().push(record);
    }

    fn open(&self, category: &str, name: impl Into<String>, parent: Option<SpanId>) -> SpanHandle {
        let Some(inner) = &self.inner else {
            return SpanHandle {
                inner: None,
                record: None,
            };
        };
        let record = SpanRecord {
            id: SpanId(inner.next_id.fetch_add(1, Ordering::Relaxed)),
            parent,
            name: name.into(),
            category: category.to_string(),
            kind: SpanKind::Span,
            start_micros: inner.clock.now_micros(),
            end_micros: 0,
            attrs: BTreeMap::new(),
            wall_start_nanos: inner.wall_nanos(),
            wall_end_nanos: 0,
        };
        SpanHandle {
            inner: Some(Arc::clone(inner)),
            record: Some(record),
        }
    }

    /// Number of records so far.
    pub fn len(&self) -> usize {
        self.inner.as_ref().map_or(0, |i| i.spans.lock().len())
    }

    /// True when nothing has been recorded (or the tracer is disarmed).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of every completed record, sorted by `(start, id)` so the
    /// order is stable regardless of which thread finished a span first.
    pub fn snapshot(&self) -> Trace {
        let mut spans = self
            .inner
            .as_ref()
            .map_or_else(Vec::new, |i| i.spans.lock().clone());
        spans.sort_by_key(|s| (s.start_micros, s.id));
        Trace { spans }
    }

    /// Discards every recorded span (the tracer stays armed; ids keep
    /// counting so later snapshots never reuse an id).
    pub fn clear(&self) {
        if let Some(inner) = &self.inner {
            inner.spans.lock().clear();
        }
    }
}

/// An open span. Records itself into the tracer when dropped; annotate with
/// [`SpanHandle::attr`] before that. Handles from a disarmed tracer are
/// inert.
pub struct SpanHandle {
    inner: Option<Arc<TracerInner>>,
    record: Option<SpanRecord>,
}

impl SpanHandle {
    /// This span's id, for parenting children (None when disarmed).
    pub fn id(&self) -> Option<SpanId> {
        self.record.as_ref().map(|r| r.id)
    }

    /// Attaches a key/value annotation.
    pub fn attr(&mut self, key: &str, value: impl Into<String>) {
        if let Some(r) = &mut self.record {
            r.attrs.insert(key.to_string(), value.into());
        }
    }

    /// Ends the span now (equivalent to dropping it).
    pub fn end(self) {}
}

impl Drop for SpanHandle {
    fn drop(&mut self) {
        let (Some(inner), Some(mut record)) = (self.inner.take(), self.record.take()) else {
            return;
        };
        record.end_micros = inner.clock.now_micros();
        record.wall_end_nanos = inner.wall_nanos();
        inner.spans.lock().push(record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_tracer_records_nothing() {
        let t = Tracer::disarmed();
        assert!(!t.is_armed());
        let mut span = t.span("test", "root");
        span.attr("k", "v");
        assert_eq!(span.id(), None);
        drop(span);
        t.instant("test", "evt", None);
        assert!(t.is_empty());
        assert!(t.snapshot().spans.is_empty());
    }

    #[test]
    fn spans_stamp_sim_clock() {
        let clock = SimClock::new();
        let t = Tracer::new(clock.clone());
        clock.advance_micros(10);
        let span = t.span("test", "work");
        clock.advance_micros(5);
        span.end();
        let trace = t.snapshot();
        assert_eq!(trace.spans.len(), 1);
        let s = &trace.spans[0];
        assert_eq!(s.start_micros, 10);
        assert_eq!(s.end_micros, 15);
        assert_eq!(s.duration_micros(), 5);
        assert_eq!(s.kind, SpanKind::Span);
    }

    #[test]
    fn parentage_and_attrs_recorded() {
        let t = Tracer::new(SimClock::new());
        let root = t.span("test", "root");
        let root_id = root.id().unwrap();
        let mut child = t.child_span("test", "child", root_id);
        child.attr("node", "n1");
        drop(child);
        t.instant("test", "tick", Some(root_id));
        drop(root);
        let trace = t.snapshot();
        assert_eq!(trace.spans.len(), 3);
        let child = trace.spans.iter().find(|s| s.name == "child").unwrap();
        assert_eq!(child.parent, Some(root_id));
        assert_eq!(child.attrs["node"], "n1");
        let tick = trace.spans.iter().find(|s| s.name == "tick").unwrap();
        assert_eq!(tick.kind, SpanKind::Instant);
        assert_eq!(tick.parent, Some(root_id));
    }

    #[test]
    fn snapshot_sorts_by_start_then_id() {
        let clock = SimClock::new();
        let t = Tracer::new(clock.clone());
        let a = t.span("test", "a"); // id 1, start 0
        clock.advance_micros(3);
        let b = t.span("test", "b"); // id 2, start 3
        drop(b); // b finishes (and is pushed) before a
        drop(a);
        let names: Vec<_> = t.snapshot().spans.iter().map(|s| s.name.clone()).collect();
        assert_eq!(names, ["a", "b"]);
    }

    #[test]
    fn identical_executions_yield_identical_traces() {
        let run = || {
            let clock = SimClock::new();
            let t = Tracer::new(clock.clone());
            let root = t.span("test", "task");
            for i in 0..3 {
                clock.advance_micros(7);
                let mut s = t.child_span("test", format!("node:n{i}"), root.id().unwrap());
                s.attr("agent", format!("agent-{i}"));
                clock.advance_micros(11);
                drop(s);
            }
            drop(root);
            let mut spans = t.snapshot().spans;
            // Byte-stability is only promised for sim-clock stamps; zero the
            // wall fields so this test also passes under `--features wallclock`.
            for s in &mut spans {
                s.wall_start_nanos = 0;
                s.wall_end_nanos = 0;
            }
            spans
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn clear_keeps_ids_monotonic() {
        let t = Tracer::new(SimClock::new());
        t.span("test", "one").end();
        let first_id = t.snapshot().spans[0].id;
        t.clear();
        assert!(t.is_empty());
        t.span("test", "two").end();
        assert!(t.snapshot().spans[0].id > first_id);
    }
}
