//! Property-based tests for the relational engine: the executor is checked
//! against a naive in-Rust oracle over randomly generated tables and
//! predicates.

use blueprint_datastore::{Column, ColumnType, Datum, RelationalDb, Schema};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct JobRow {
    id: i64,
    title: String,
    salary: f64,
}

fn title_strategy() -> impl Strategy<Value = String> {
    prop::sample::select(vec![
        "data scientist".to_string(),
        "ml engineer".to_string(),
        "analyst".to_string(),
        "recruiter".to_string(),
    ])
}

fn rows_strategy() -> impl Strategy<Value = Vec<JobRow>> {
    prop::collection::vec(
        (0i64..1000, title_strategy(), 50_000.0f64..250_000.0).prop_map(|(id, title, salary)| {
            JobRow {
                id,
                title,
                salary: salary.round(),
            }
        }),
        0..60,
    )
}

fn build_db(rows: &[JobRow], index: bool) -> RelationalDb {
    let db = RelationalDb::new();
    db.create_table(
        "jobs",
        Schema::new(vec![
            Column::new("id", ColumnType::Int),
            Column::new("title", ColumnType::Text),
            Column::new("salary", ColumnType::Float),
        ])
        .unwrap(),
    )
    .unwrap();
    for r in rows {
        db.insert_row(
            "jobs",
            vec![
                Datum::Int(r.id),
                Datum::Text(r.title.clone()),
                Datum::Float(r.salary),
            ],
        )
        .unwrap();
    }
    if index {
        db.create_index("jobs", "title").unwrap();
    }
    db
}

proptest! {
    /// COUNT(*) with a comparison predicate matches the oracle.
    #[test]
    fn count_with_predicate_matches_oracle(rows in rows_strategy(), threshold in 50_000.0f64..250_000.0) {
        let db = build_db(&rows, false);
        let threshold = threshold.round();
        let got = db
            .execute(&format!("SELECT COUNT(*) FROM jobs WHERE salary >= {threshold}"))
            .unwrap();
        let expected = rows.iter().filter(|r| r.salary >= threshold).count() as i64;
        prop_assert_eq!(&got.rows[0][0], &Datum::Int(expected));
    }

    /// Equality filtering is identical with and without a hash index.
    #[test]
    fn index_agrees_with_scan(rows in rows_strategy(), probe in title_strategy()) {
        let plain = build_db(&rows, false);
        let indexed = build_db(&rows, true);
        let sql = format!("SELECT id FROM jobs WHERE title = '{probe}' ORDER BY id");
        let a = plain.execute(&sql).unwrap();
        let b = indexed.execute(&sql).unwrap();
        prop_assert_eq!(a, b);
    }

    /// ORDER BY produces a sorted permutation of the unordered result.
    #[test]
    fn order_by_sorts_and_preserves_rows(rows in rows_strategy()) {
        let db = build_db(&rows, false);
        let ordered = db.execute("SELECT salary FROM jobs ORDER BY salary ASC").unwrap();
        let mut expected: Vec<f64> = rows.iter().map(|r| r.salary).collect();
        expected.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let got: Vec<f64> = ordered.rows.iter().map(|r| r[0].as_f64().unwrap()).collect();
        prop_assert_eq!(got, expected);
    }

    /// LIMIT n returns min(n, total) rows — the prefix of the ordered set.
    #[test]
    fn limit_truncates_prefix(rows in rows_strategy(), limit in 0u64..20) {
        let db = build_db(&rows, false);
        let full = db.execute("SELECT id FROM jobs ORDER BY id, salary").unwrap();
        let limited = db
            .execute(&format!("SELECT id FROM jobs ORDER BY id, salary LIMIT {limit}"))
            .unwrap();
        prop_assert_eq!(limited.rows.len(), full.rows.len().min(limit as usize));
        prop_assert_eq!(&limited.rows[..], &full.rows[..limited.rows.len()]);
    }

    /// GROUP BY counts partition the table: group sizes sum to row count.
    #[test]
    fn group_by_partitions(rows in rows_strategy()) {
        let db = build_db(&rows, false);
        let grouped = db
            .execute("SELECT title, COUNT(*) AS n FROM jobs GROUP BY title")
            .unwrap();
        let total: i64 = grouped
            .rows
            .iter()
            .map(|r| match r[1] {
                Datum::Int(n) => n,
                _ => 0,
            })
            .sum();
        prop_assert_eq!(total, rows.len() as i64);
        // Each group's count matches the oracle.
        for row in &grouped.rows {
            let title = row[0].as_str().unwrap();
            let expected = rows.iter().filter(|r| r.title == title).count() as i64;
            prop_assert_eq!(&row[1], &Datum::Int(expected));
        }
    }

    /// SUM/AVG/MIN/MAX agree with the oracle (within float tolerance).
    #[test]
    fn aggregates_match_oracle(rows in rows_strategy()) {
        prop_assume!(!rows.is_empty());
        let db = build_db(&rows, false);
        let r = db
            .execute("SELECT SUM(salary), AVG(salary), MIN(salary), MAX(salary) FROM jobs")
            .unwrap();
        let salaries: Vec<f64> = rows.iter().map(|r| r.salary).collect();
        let sum: f64 = salaries.iter().sum();
        let avg = sum / salaries.len() as f64;
        let min = salaries.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = salaries.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!((r.rows[0][0].as_f64().unwrap() - sum).abs() < 1e-6 * sum.abs().max(1.0));
        prop_assert!((r.rows[0][1].as_f64().unwrap() - avg).abs() < 1e-6 * avg.abs().max(1.0));
        prop_assert_eq!(r.rows[0][2].as_f64().unwrap(), min);
        prop_assert_eq!(r.rows[0][3].as_f64().unwrap(), max);
    }

    /// DISTINCT returns the set of distinct values.
    #[test]
    fn distinct_is_set_semantics(rows in rows_strategy()) {
        let db = build_db(&rows, false);
        let got = db.execute("SELECT DISTINCT title FROM jobs").unwrap();
        let expected: std::collections::BTreeSet<&str> =
            rows.iter().map(|r| r.title.as_str()).collect();
        let got_set: std::collections::BTreeSet<String> = got
            .rows
            .iter()
            .map(|r| r[0].as_str().unwrap().to_string())
            .collect();
        prop_assert_eq!(got.rows.len(), got_set.len()); // no duplicates
        prop_assert_eq!(
            got_set,
            expected.into_iter().map(str::to_string).collect::<std::collections::BTreeSet<_>>()
        );
    }

    /// IN-list equals the union of equality predicates.
    #[test]
    fn in_list_is_union(rows in rows_strategy()) {
        let db = build_db(&rows, false);
        let in_list = db
            .execute("SELECT COUNT(*) FROM jobs WHERE title IN ('data scientist', 'analyst')")
            .unwrap();
        let a = db
            .execute("SELECT COUNT(*) FROM jobs WHERE title = 'data scientist'")
            .unwrap();
        let b = db
            .execute("SELECT COUNT(*) FROM jobs WHERE title = 'analyst'")
            .unwrap();
        let count = |r: &blueprint_datastore::ResultSet| match r.rows[0][0] {
            Datum::Int(n) => n,
            _ => 0,
        };
        prop_assert_eq!(count(&in_list), count(&a) + count(&b));
    }

    /// Inserting after index creation keeps index probes consistent.
    #[test]
    fn incremental_index_maintenance(first in rows_strategy(), second in rows_strategy()) {
        let db = build_db(&first, true);
        for r in &second {
            db.insert_row(
                "jobs",
                vec![Datum::Int(r.id), Datum::Text(r.title.clone()), Datum::Float(r.salary)],
            )
            .unwrap();
        }
        let probed = db
            .execute("SELECT COUNT(*) FROM jobs WHERE title = 'analyst'")
            .unwrap();
        let expected = first
            .iter()
            .chain(&second)
            .filter(|r| r.title == "analyst")
            .count() as i64;
        prop_assert_eq!(&probed.rows[0][0], &Datum::Int(expected));
    }
}
