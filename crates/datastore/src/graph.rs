//! Property graph store.
//!
//! The paper's data plan (Fig 7) consults "a graph database, which contains
//! a title taxonomy" to expand "data scientist" into related titles. This
//! store holds labelled nodes with JSON properties and typed directed edges,
//! and supports neighbor queries and bounded BFS traversal — enough for
//! taxonomy expansion, synonym lookup, and org-chart style queries.

use std::collections::{HashMap, HashSet, VecDeque};

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use serde_json::Value;

use crate::error::DataError;
use crate::Result;

/// A graph node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Unique node id.
    pub id: String,
    /// Label (e.g. `title`, `skill`).
    pub label: String,
    /// JSON properties.
    pub props: Value,
}

/// A directed, typed edge.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Edge {
    /// Source node id.
    pub from: String,
    /// Target node id.
    pub to: String,
    /// Edge type (e.g. `synonym_of`, `specializes`).
    pub etype: String,
}

#[derive(Default)]
struct Inner {
    nodes: HashMap<String, Node>,
    out: HashMap<String, Vec<Edge>>,
    incoming: HashMap<String, Vec<Edge>>,
}

/// Thread-safe property graph.
#[derive(Default)]
pub struct PropertyGraph {
    inner: RwLock<Inner>,
}

impl PropertyGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or replaces) a node.
    pub fn add_node(
        &self,
        id: impl Into<String>,
        label: impl Into<String>,
        props: Value,
    ) -> Result<()> {
        let id = id.into();
        if id.is_empty() {
            return Err(DataError::Schema("empty node id".into()));
        }
        let node = Node {
            id: id.clone(),
            label: label.into(),
            props,
        };
        self.inner.write().nodes.insert(id, node);
        Ok(())
    }

    /// Adds a directed edge; both endpoints must exist.
    pub fn add_edge(
        &self,
        from: impl Into<String>,
        to: impl Into<String>,
        etype: impl Into<String>,
    ) -> Result<()> {
        let (from, to, etype) = (from.into(), to.into(), etype.into());
        let mut inner = self.inner.write();
        for endpoint in [&from, &to] {
            if !inner.nodes.contains_key(endpoint) {
                return Err(DataError::NotFound(format!("node {endpoint}")));
            }
        }
        let edge = Edge {
            from: from.clone(),
            to: to.clone(),
            etype,
        };
        inner.out.entry(from).or_default().push(edge.clone());
        inner.incoming.entry(to).or_default().push(edge);
        Ok(())
    }

    /// Fetches a node.
    pub fn node(&self, id: &str) -> Result<Node> {
        self.inner
            .read()
            .nodes
            .get(id)
            .cloned()
            .ok_or_else(|| DataError::NotFound(format!("node {id}")))
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.inner.read().nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.inner.read().out.values().map(Vec::len).sum()
    }

    /// Outgoing neighbors, optionally filtered by edge type, sorted by id.
    pub fn neighbors(&self, id: &str, etype: Option<&str>) -> Result<Vec<Node>> {
        let inner = self.inner.read();
        if !inner.nodes.contains_key(id) {
            return Err(DataError::NotFound(format!("node {id}")));
        }
        let mut out: Vec<Node> = inner
            .out
            .get(id)
            .into_iter()
            .flatten()
            .filter(|e| etype.is_none_or(|t| e.etype == t))
            .filter_map(|e| inner.nodes.get(&e.to).cloned())
            .collect();
        out.sort_by(|a, b| a.id.cmp(&b.id));
        out.dedup_by(|a, b| a.id == b.id);
        Ok(out)
    }

    /// Incoming neighbors, optionally filtered by edge type, sorted by id.
    pub fn incoming(&self, id: &str, etype: Option<&str>) -> Result<Vec<Node>> {
        let inner = self.inner.read();
        if !inner.nodes.contains_key(id) {
            return Err(DataError::NotFound(format!("node {id}")));
        }
        let mut out: Vec<Node> = inner
            .incoming
            .get(id)
            .into_iter()
            .flatten()
            .filter(|e| etype.is_none_or(|t| e.etype == t))
            .filter_map(|e| inner.nodes.get(&e.from).cloned())
            .collect();
        out.sort_by(|a, b| a.id.cmp(&b.id));
        out.dedup_by(|a, b| a.id == b.id);
        Ok(out)
    }

    /// BFS over outgoing (and optionally incoming) edges up to `depth` hops,
    /// optionally restricted to an edge type. Returns reached nodes
    /// (excluding the start), sorted by id.
    pub fn traverse(
        &self,
        start: &str,
        etype: Option<&str>,
        depth: usize,
        undirected: bool,
    ) -> Result<Vec<Node>> {
        let inner = self.inner.read();
        if !inner.nodes.contains_key(start) {
            return Err(DataError::NotFound(format!("node {start}")));
        }
        let mut seen: HashSet<String> = HashSet::new();
        seen.insert(start.to_string());
        let mut queue: VecDeque<(String, usize)> = VecDeque::new();
        queue.push_back((start.to_string(), 0));
        let mut reached = Vec::new();
        while let Some((node, d)) = queue.pop_front() {
            if d == depth {
                continue;
            }
            let mut next: Vec<&Edge> = inner.out.get(&node).into_iter().flatten().collect();
            let mut incoming_edges: Vec<&Edge> = Vec::new();
            if undirected {
                incoming_edges = inner.incoming.get(&node).into_iter().flatten().collect();
            }
            for e in next.drain(..).chain(incoming_edges) {
                if etype.is_some_and(|t| e.etype != t) {
                    continue;
                }
                let other = if e.from == node { &e.to } else { &e.from };
                if seen.insert(other.clone()) {
                    if let Some(n) = inner.nodes.get(other) {
                        reached.push(n.clone());
                    }
                    queue.push_back((other.clone(), d + 1));
                }
            }
        }
        reached.sort_by(|a, b| a.id.cmp(&b.id));
        Ok(reached)
    }

    /// Nodes with the given label, sorted by id.
    pub fn nodes_with_label(&self, label: &str) -> Vec<Node> {
        let inner = self.inner.read();
        let mut out: Vec<Node> = inner
            .nodes
            .values()
            .filter(|n| n.label == label)
            .cloned()
            .collect();
        out.sort_by(|a, b| a.id.cmp(&b.id));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    /// The title taxonomy from the paper's Fig 7 discussion.
    fn taxonomy() -> PropertyGraph {
        let g = PropertyGraph::new();
        for (id, name) in [
            ("data-scientist", "data scientist"),
            ("ml-engineer", "machine learning engineer"),
            ("data-analyst", "data analyst"),
            ("research-scientist", "research scientist"),
            ("statistician", "statistician"),
        ] {
            g.add_node(id, "title", json!({"name": name})).unwrap();
        }
        g.add_edge("ml-engineer", "data-scientist", "related_to")
            .unwrap();
        g.add_edge("data-analyst", "data-scientist", "specializes_into")
            .unwrap();
        g.add_edge("data-scientist", "research-scientist", "related_to")
            .unwrap();
        g.add_edge("statistician", "data-scientist", "synonym_of")
            .unwrap();
        g
    }

    #[test]
    fn counts() {
        let g = taxonomy();
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn node_lookup() {
        let g = taxonomy();
        assert_eq!(
            g.node("data-scientist").unwrap().props["name"],
            json!("data scientist")
        );
        assert!(g.node("ghost").is_err());
    }

    #[test]
    fn edge_requires_endpoints() {
        let g = taxonomy();
        assert!(g.add_edge("data-scientist", "ghost", "x").is_err());
        assert!(g.add_edge("ghost", "data-scientist", "x").is_err());
    }

    #[test]
    fn empty_node_id_rejected() {
        assert!(PropertyGraph::new().add_node("", "l", json!({})).is_err());
    }

    #[test]
    fn neighbors_directed() {
        let g = taxonomy();
        let out = g.neighbors("data-scientist", None).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].id, "research-scientist");
        let inc = g.incoming("data-scientist", None).unwrap();
        let ids: Vec<&str> = inc.iter().map(|n| n.id.as_str()).collect();
        assert_eq!(ids, ["data-analyst", "ml-engineer", "statistician"]);
    }

    #[test]
    fn neighbors_filter_by_type() {
        let g = taxonomy();
        let syn = g.incoming("data-scientist", Some("synonym_of")).unwrap();
        assert_eq!(syn.len(), 1);
        assert_eq!(syn[0].id, "statistician");
    }

    #[test]
    fn traverse_undirected_expands_titles() {
        // The Fig 7 use: expand "data scientist" into related titles.
        let g = taxonomy();
        let related = g.traverse("data-scientist", None, 1, true).unwrap();
        let ids: Vec<&str> = related.iter().map(|n| n.id.as_str()).collect();
        assert_eq!(
            ids,
            [
                "data-analyst",
                "ml-engineer",
                "research-scientist",
                "statistician"
            ]
        );
    }

    #[test]
    fn traverse_depth_zero_reaches_nothing() {
        let g = taxonomy();
        assert!(g
            .traverse("data-scientist", None, 0, true)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn traverse_directed_respects_direction() {
        let g = taxonomy();
        let reached = g.traverse("ml-engineer", None, 2, false).unwrap();
        let ids: Vec<&str> = reached.iter().map(|n| n.id.as_str()).collect();
        assert_eq!(ids, ["data-scientist", "research-scientist"]);
    }

    #[test]
    fn traverse_missing_start_errors() {
        assert!(taxonomy().traverse("ghost", None, 1, true).is_err());
    }

    #[test]
    fn nodes_with_label() {
        let g = taxonomy();
        g.add_node("python", "skill", json!({})).unwrap();
        assert_eq!(g.nodes_with_label("title").len(), 5);
        assert_eq!(g.nodes_with_label("skill").len(), 1);
        assert!(g.nodes_with_label("none").is_empty());
    }

    #[test]
    fn traverse_handles_cycles() {
        let g = PropertyGraph::new();
        g.add_node("a", "n", json!({})).unwrap();
        g.add_node("b", "n", json!({})).unwrap();
        g.add_edge("a", "b", "e").unwrap();
        g.add_edge("b", "a", "e").unwrap();
        let reached = g.traverse("a", None, 10, false).unwrap();
        assert_eq!(reached.len(), 1);
    }
}
