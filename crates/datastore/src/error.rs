//! Error type for the data substrates.

use std::fmt;

/// Errors raised by the relational, document, graph, and KV substrates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// SQL text could not be tokenized or parsed.
    Parse(String),
    /// The query references an unknown table.
    UnknownTable(String),
    /// The query references an unknown column.
    UnknownColumn(String),
    /// A value did not match the column type.
    TypeError(String),
    /// Runtime evaluation failure (division by zero, bad aggregate, ...).
    Eval(String),
    /// The referenced document/node/key does not exist.
    NotFound(String),
    /// Schema-level violation (duplicate table, arity mismatch, ...).
    Schema(String),
    /// The source is transiently unreachable (outage, injected fault);
    /// retrying or falling back to another source may succeed.
    Unavailable(String),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::Parse(msg) => write!(f, "parse error: {msg}"),
            DataError::UnknownTable(name) => write!(f, "unknown table: {name}"),
            DataError::UnknownColumn(name) => write!(f, "unknown column: {name}"),
            DataError::TypeError(msg) => write!(f, "type error: {msg}"),
            DataError::Eval(msg) => write!(f, "evaluation error: {msg}"),
            DataError::NotFound(what) => write!(f, "not found: {what}"),
            DataError::Schema(msg) => write!(f, "schema error: {msg}"),
            DataError::Unavailable(msg) => write!(f, "source unavailable: {msg}"),
        }
    }
}

impl std::error::Error for DataError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert_eq!(
            DataError::Parse("bad token".into()).to_string(),
            "parse error: bad token"
        );
        assert_eq!(
            DataError::UnknownTable("jobs".into()).to_string(),
            "unknown table: jobs"
        );
        assert_eq!(
            DataError::UnknownColumn("x".into()).to_string(),
            "unknown column: x"
        );
        assert!(DataError::TypeError("t".into())
            .to_string()
            .contains("type"));
        assert!(DataError::Eval("e".into())
            .to_string()
            .contains("evaluation"));
        assert!(DataError::NotFound("n".into())
            .to_string()
            .contains("not found"));
        assert!(DataError::Schema("s".into()).to_string().contains("schema"));
        assert_eq!(
            DataError::Unavailable("hr-db offline".into()).to_string(),
            "source unavailable: hr-db offline"
        );
    }
}
