//! Document store with an inverted index and ranked text search.
//!
//! Job-seeker profiles in the YourJourney scenario live "in a document
//! collection" (§V-D); this store holds JSON documents, indexes every text
//! field into an inverted index, and answers ranked keyword queries
//! (TF scoring with length normalization) plus exact field filters.

use std::collections::HashMap;

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use serde_json::Value;

use crate::error::DataError;
use crate::Result;

/// A stored document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Document {
    /// Unique document id.
    pub id: String,
    /// JSON body.
    pub body: Value,
}

/// A ranked search result.
#[derive(Debug, Clone, PartialEq)]
pub struct DocHit {
    /// Document id.
    pub id: String,
    /// Relevance score (term frequency, length-normalized).
    pub score: f32,
}

#[derive(Default)]
struct Inner {
    docs: HashMap<String, Document>,
    /// token → (doc id → term frequency)
    inverted: HashMap<String, HashMap<String, u32>>,
    /// doc id → token count (for normalization)
    lengths: HashMap<String, u32>,
}

/// Thread-safe document collection.
#[derive(Default)]
pub struct DocumentStore {
    inner: RwLock<Inner>,
}

fn tokenize(text: &str) -> Vec<String> {
    text.to_lowercase()
        .split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(str::to_string)
        .collect()
}

/// Collects every string value in a JSON tree.
fn collect_text(value: &Value, out: &mut String) {
    match value {
        Value::String(s) => {
            out.push_str(s);
            out.push(' ');
        }
        Value::Array(items) => {
            for v in items {
                collect_text(v, out);
            }
        }
        Value::Object(map) => {
            for v in map.values() {
                collect_text(v, out);
            }
        }
        _ => {}
    }
}

impl DocumentStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts (or replaces) a document, reindexing its text.
    pub fn put(&self, id: impl Into<String>, body: Value) -> Result<()> {
        let id = id.into();
        if id.is_empty() {
            return Err(DataError::Schema("empty document id".into()));
        }
        let mut inner = self.inner.write();
        // Remove stale postings on replace.
        if inner.docs.contains_key(&id) {
            remove_postings(&mut inner, &id);
        }
        let mut text = String::new();
        collect_text(&body, &mut text);
        let tokens = tokenize(&text);
        inner.lengths.insert(id.clone(), tokens.len() as u32);
        for t in tokens {
            *inner
                .inverted
                .entry(t)
                .or_default()
                .entry(id.clone())
                .or_insert(0) += 1;
        }
        inner.docs.insert(id.clone(), Document { id, body });
        Ok(())
    }

    /// Fetches a document by id.
    pub fn get(&self, id: &str) -> Result<Document> {
        self.inner
            .read()
            .docs
            .get(id)
            .cloned()
            .ok_or_else(|| DataError::NotFound(format!("document {id}")))
    }

    /// Removes a document.
    pub fn delete(&self, id: &str) -> Result<()> {
        let mut inner = self.inner.write();
        if inner.docs.remove(id).is_none() {
            return Err(DataError::NotFound(format!("document {id}")));
        }
        remove_postings(&mut inner, id);
        inner.lengths.remove(id);
        Ok(())
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.inner.read().docs.len()
    }

    /// True if the store holds no documents.
    pub fn is_empty(&self) -> bool {
        self.inner.read().docs.is_empty()
    }

    /// Ranked keyword search over all text fields.
    pub fn search(&self, query: &str, limit: usize) -> Vec<DocHit> {
        let inner = self.inner.read();
        let mut scores: HashMap<&str, f32> = HashMap::new();
        for t in tokenize(query) {
            if let Some(postings) = inner.inverted.get(&t) {
                for (doc, tf) in postings {
                    let len = inner.lengths.get(doc).copied().unwrap_or(1).max(1) as f32;
                    *scores.entry(doc.as_str()).or_insert(0.0) += *tf as f32 / len.sqrt();
                }
            }
        }
        let mut hits: Vec<DocHit> = scores
            .into_iter()
            .map(|(id, score)| DocHit {
                id: id.to_string(),
                score,
            })
            .collect();
        hits.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.id.cmp(&b.id))
        });
        hits.truncate(limit);
        hits
    }

    /// Exact-match filter on a top-level field, returning matching documents
    /// sorted by id.
    pub fn filter_eq(&self, field: &str, value: &Value) -> Vec<Document> {
        let inner = self.inner.read();
        let mut out: Vec<Document> = inner
            .docs
            .values()
            .filter(|d| d.body.get(field) == Some(value))
            .cloned()
            .collect();
        out.sort_by(|a, b| a.id.cmp(&b.id));
        out
    }

    /// All document ids, sorted.
    pub fn ids(&self) -> Vec<String> {
        let mut ids: Vec<String> = self.inner.read().docs.keys().cloned().collect();
        ids.sort();
        ids
    }
}

fn remove_postings(inner: &mut Inner, id: &str) {
    for postings in inner.inverted.values_mut() {
        postings.remove(id);
    }
    inner.inverted.retain(|_, p| !p.is_empty());
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn seeded() -> DocumentStore {
        let s = DocumentStore::new();
        s.put(
            "p1",
            json!({"name": "Ada", "skills": ["python", "machine learning", "sql"],
                   "summary": "senior data scientist with ml experience"}),
        )
        .unwrap();
        s.put(
            "p2",
            json!({"name": "Grace", "skills": ["compilers", "systems"],
                   "summary": "systems engineer and compiler expert"}),
        )
        .unwrap();
        s.put(
            "p3",
            json!({"name": "Alan", "skills": ["python", "statistics"],
                   "summary": "data analyst moving into data science"}),
        )
        .unwrap();
        s
    }

    #[test]
    fn put_get_delete_lifecycle() {
        let s = seeded();
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.get("p1").unwrap().body["name"], json!("Ada"));
        s.delete("p1").unwrap();
        assert!(s.get("p1").is_err());
        assert!(s.delete("p1").is_err());
        assert_eq!(s.ids(), ["p2", "p3"]);
    }

    #[test]
    fn empty_id_rejected() {
        assert!(DocumentStore::new().put("", json!({})).is_err());
    }

    #[test]
    fn search_ranks_by_relevance() {
        let s = seeded();
        let hits = s.search("data scientist machine learning", 10);
        assert!(!hits.is_empty());
        assert_eq!(hits[0].id, "p1");
    }

    #[test]
    fn search_misses_return_empty() {
        let s = seeded();
        assert!(s.search("quantum chromodynamics", 10).is_empty());
        assert!(s.search("", 10).is_empty());
    }

    #[test]
    fn search_limit_applies() {
        let s = seeded();
        let hits = s.search("python data", 1);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn replace_reindexes() {
        let s = seeded();
        s.put("p2", json!({"summary": "now a data scientist too"}))
            .unwrap();
        let hits = s.search("compiler", 10);
        assert!(hits.iter().all(|h| h.id != "p2"));
        let hits2 = s.search("data scientist", 10);
        assert!(hits2.iter().any(|h| h.id == "p2"));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn filter_eq_matches_field() {
        let s = seeded();
        let docs = s.filter_eq("name", &json!("Grace"));
        assert_eq!(docs.len(), 1);
        assert_eq!(docs[0].id, "p2");
        assert!(s.filter_eq("name", &json!("Nobody")).is_empty());
    }

    #[test]
    fn nested_arrays_are_indexed() {
        let s = seeded();
        let hits = s.search("compilers", 10);
        assert_eq!(hits[0].id, "p2");
    }

    #[test]
    fn deterministic_tie_break_by_id() {
        let s = DocumentStore::new();
        s.put("b", json!({"t": "alpha"})).unwrap();
        s.put("a", json!({"t": "alpha"})).unwrap();
        let hits = s.search("alpha", 10);
        assert_eq!(hits[0].id, "a");
        assert_eq!(hits[1].id, "b");
    }
}
