//! # blueprint-datastore
//!
//! The multi-modal enterprise data substrate the blueprint's data registry
//! and data planner operate over (§V-D, §V-G). The paper's YourJourney
//! scenario hosts resume, job-posting, and application data "on several
//! databases (document, relational)" plus a graph title taxonomy; this crate
//! implements those substrates from scratch:
//!
//! * [`relational`] — an in-memory relational engine with a SQL subset
//!   (lexer, parser, executor: scans, filters, projections, inner joins,
//!   aggregates with GROUP BY/HAVING, ORDER BY, LIMIT, DISTINCT) and hash
//!   indices for equality predicates;
//! * [`document`] — a document store with an inverted index and ranked text
//!   search;
//! * [`graph`] — a property graph with traversal (the title taxonomy of
//!   Fig 7 lives here);
//! * [`kv`] — a key-value store;
//! * [`source`] — the uniform [`DataSource`] interface the data planner
//!   queries, with per-request cost estimation for the optimizer.

pub mod document;
pub mod error;
pub mod graph;
pub mod kv;
pub mod relational;
pub mod schema;
pub mod source;
pub mod sql;
pub mod value;

pub use document::{DocHit, Document, DocumentStore};
pub use error::DataError;
pub use graph::{Edge, Node, PropertyGraph};
pub use kv::KvStore;
pub use relational::{RelationalDb, ResultSet, Table};
pub use schema::{Column, ColumnType, Schema};
pub use source::{
    CostEstimate, DataSource, DocumentSource, FaultInjectedSource, GraphSource, InstrumentedSource,
    KvSource, RelationalSource, SourceQuery, SourceResult,
};
pub use value::{Datum, Row};

/// Result alias for datastore operations.
pub type Result<T> = std::result::Result<T, DataError>;
