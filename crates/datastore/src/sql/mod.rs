//! SQL subset: lexer, AST, and parser.
//!
//! The engine supports the slice of SQL the blueprint's NL2Q agent and data
//! planner emit:
//!
//! ```sql
//! CREATE TABLE jobs (id INT, title TEXT, city TEXT, salary FLOAT);
//! INSERT INTO jobs VALUES (1, 'data scientist', 'san francisco', 180000.0);
//! SELECT title, COUNT(*) AS n FROM jobs
//!   JOIN companies ON jobs.company_id = companies.id
//!   WHERE city IN ('san francisco', 'oakland') AND salary >= 150000
//!   GROUP BY title HAVING COUNT(*) > 1
//!   ORDER BY n DESC LIMIT 10;
//! ```
//!
//! Execution lives in [`crate::relational`].

pub mod ast;
pub mod lexer;
pub mod parser;

pub use ast::{
    BinOp, Expr, InsertStmt, Join, OrderKey, SelectItem, SelectStmt, Stmt, TableRef, UnOp,
};
pub use lexer::{tokenize, Token};
pub use parser::parse;
