//! SQL tokenizer.

use crate::error::DataError;
use crate::Result;

/// A SQL token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (uppercased for case-insensitive matching).
    Word(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal (quotes stripped, `''` unescaped).
    Str(String),
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `*`
    Star,
    /// `.`
    Dot,
    /// `;`
    Semicolon,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
}

/// Tokenizes SQL text.
pub fn tokenize(sql: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = sql.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            c if c.is_whitespace() => i += 1,
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            ';' => {
                tokens.push(Token::Semicolon);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            '-' => {
                // `--` starts a comment to end of line.
                if chars.get(i + 1) == Some(&'-') {
                    while i < chars.len() && chars[i] != '\n' {
                        i += 1;
                    }
                } else {
                    tokens.push(Token::Minus);
                    i += 1;
                }
            }
            '/' => {
                tokens.push(Token::Slash);
                i += 1;
            }
            '!' => {
                if chars.get(i + 1) == Some(&'=') {
                    tokens.push(Token::Ne);
                    i += 2;
                } else {
                    return Err(DataError::Parse("unexpected '!'".into()));
                }
            }
            '<' => match chars.get(i + 1) {
                Some('=') => {
                    tokens.push(Token::Le);
                    i += 2;
                }
                Some('>') => {
                    tokens.push(Token::Ne);
                    i += 2;
                }
                _ => {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            },
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    tokens.push(Token::Ge);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match chars.get(i) {
                        Some('\'') if chars.get(i + 1) == Some(&'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some('\'') => {
                            i += 1;
                            break;
                        }
                        Some(&ch) => {
                            s.push(ch);
                            i += 1;
                        }
                        None => return Err(DataError::Parse("unterminated string literal".into())),
                    }
                }
                tokens.push(Token::Str(s));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < chars.len() && chars[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < chars.len()
                    && chars[i] == '.'
                    && chars.get(i + 1).is_some_and(|c| c.is_ascii_digit())
                {
                    is_float = true;
                    i += 1;
                    while i < chars.len() && chars[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text: String = chars[start..i].iter().collect();
                if is_float {
                    tokens.push(Token::Float(text.parse().map_err(|_| {
                        DataError::Parse(format!("bad float literal: {text}"))
                    })?));
                } else {
                    tokens.push(Token::Int(text.parse().map_err(|_| {
                        DataError::Parse(format!("bad int literal: {text}"))
                    })?));
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let word: String = chars[start..i].iter().collect();
                tokens.push(Token::Word(word.to_ascii_uppercase()));
            }
            other => return Err(DataError::Parse(format!("unexpected character: {other}"))),
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_select_tokens() {
        let t = tokenize("SELECT * FROM jobs WHERE salary >= 100").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Word("SELECT".into()),
                Token::Star,
                Token::Word("FROM".into()),
                Token::Word("JOBS".into()),
                Token::Word("WHERE".into()),
                Token::Word("SALARY".into()),
                Token::Ge,
                Token::Int(100),
            ]
        );
    }

    #[test]
    fn string_escapes() {
        let t = tokenize("'it''s fine'").unwrap();
        assert_eq!(t, vec![Token::Str("it's fine".into())]);
    }

    #[test]
    fn unterminated_string_fails() {
        assert!(tokenize("'oops").is_err());
    }

    #[test]
    fn float_and_int_literals() {
        let t = tokenize("1 2.5 3.0").unwrap();
        assert_eq!(t, vec![Token::Int(1), Token::Float(2.5), Token::Float(3.0)]);
    }

    #[test]
    fn comparison_operators() {
        let t = tokenize("< <= > >= = <> !=").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Lt,
                Token::Le,
                Token::Gt,
                Token::Ge,
                Token::Eq,
                Token::Ne,
                Token::Ne
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let t = tokenize("SELECT 1 -- trailing comment\n, 2").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Word("SELECT".into()),
                Token::Int(1),
                Token::Comma,
                Token::Int(2)
            ]
        );
    }

    #[test]
    fn qualified_names() {
        let t = tokenize("jobs.title").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Word("JOBS".into()),
                Token::Dot,
                Token::Word("TITLE".into())
            ]
        );
    }

    #[test]
    fn bad_character_fails() {
        assert!(tokenize("SELECT @x").is_err());
        assert!(tokenize("a ! b").is_err());
    }

    #[test]
    fn arithmetic_tokens() {
        let t = tokenize("1 + 2 - 3 / 4 * 5").unwrap();
        assert_eq!(t.len(), 9);
        assert!(t.contains(&Token::Plus));
        assert!(t.contains(&Token::Minus));
        assert!(t.contains(&Token::Slash));
        assert!(t.contains(&Token::Star));
    }
}
