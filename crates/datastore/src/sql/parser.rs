//! Recursive-descent SQL parser.

use crate::error::DataError;
use crate::schema::ColumnType;
use crate::value::Datum;
use crate::Result;

use super::ast::*;
use super::lexer::{tokenize, Token};

/// Parses one SQL statement (a trailing `;` is allowed).
pub fn parse(sql: &str) -> Result<Stmt> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.eat_semicolons();
    if p.pos != p.tokens.len() {
        return Err(DataError::Parse(format!(
            "unexpected trailing tokens at position {}",
            p.pos
        )));
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, expected: &Token) -> bool {
        if self.peek() == Some(expected) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, expected: &Token) -> Result<()> {
        if self.eat(expected) {
            Ok(())
        } else {
            Err(DataError::Parse(format!(
                "expected {expected:?}, found {:?}",
                self.peek()
            )))
        }
    }

    fn eat_word(&mut self, word: &str) -> bool {
        if matches!(self.peek(), Some(Token::Word(w)) if w == word) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_word(&mut self, word: &str) -> Result<()> {
        if self.eat_word(word) {
            Ok(())
        } else {
            Err(DataError::Parse(format!(
                "expected {word}, found {:?}",
                self.peek()
            )))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next() {
            Some(Token::Word(w)) => Ok(w.to_ascii_lowercase()),
            other => Err(DataError::Parse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn eat_semicolons(&mut self) {
        while self.eat(&Token::Semicolon) {}
    }

    fn statement(&mut self) -> Result<Stmt> {
        if self.eat_word("CREATE") {
            self.create_table()
        } else if self.eat_word("INSERT") {
            self.insert()
        } else if self.eat_word("SELECT") {
            Ok(Stmt::Select(Box::new(self.select()?)))
        } else {
            Err(DataError::Parse(format!(
                "expected CREATE, INSERT, or SELECT, found {:?}",
                self.peek()
            )))
        }
    }

    fn create_table(&mut self) -> Result<Stmt> {
        self.expect_word("TABLE")?;
        let name = self.ident()?;
        self.expect(&Token::LParen)?;
        let mut columns = Vec::new();
        loop {
            let col = self.ident()?;
            let ty_word = self.ident()?;
            columns.push((col, ColumnType::parse(&ty_word)?));
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::RParen)?;
        Ok(Stmt::CreateTable { name, columns })
    }

    fn insert(&mut self) -> Result<Stmt> {
        self.expect_word("INTO")?;
        let table = self.ident()?;
        let columns = if self.eat(&Token::LParen) {
            let mut cols = Vec::new();
            loop {
                cols.push(self.ident()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
            Some(cols)
        } else {
            None
        };
        self.expect_word("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect(&Token::LParen)?;
            let mut row = Vec::new();
            loop {
                row.push(self.expr()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
            rows.push(row);
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        Ok(Stmt::Insert(InsertStmt {
            table,
            columns,
            rows,
        }))
    }

    fn select(&mut self) -> Result<SelectStmt> {
        let mut stmt = SelectStmt {
            distinct: self.eat_word("DISTINCT"),
            ..Default::default()
        };

        loop {
            if self.eat(&Token::Star) {
                stmt.items.push(SelectItem::Wildcard);
            } else {
                let expr = self.expr()?;
                let alias = if self.eat_word("AS") {
                    Some(self.ident()?)
                } else {
                    None
                };
                stmt.items.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat(&Token::Comma) {
                break;
            }
        }

        if self.eat_word("FROM") {
            stmt.from = Some(self.table_ref()?);
            while self.eat_word("JOIN") || (self.eat_word("INNER") && self.eat_word("JOIN")) {
                let table = self.table_ref()?;
                self.expect_word("ON")?;
                let on = self.expr()?;
                stmt.joins.push(Join { table, on });
            }
        }

        if self.eat_word("WHERE") {
            stmt.where_clause = Some(self.expr()?);
        }
        if self.eat_word("GROUP") {
            self.expect_word("BY")?;
            loop {
                stmt.group_by.push(self.expr()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        if self.eat_word("HAVING") {
            stmt.having = Some(self.expr()?);
        }
        if self.eat_word("ORDER") {
            self.expect_word("BY")?;
            loop {
                let expr = self.expr()?;
                let asc = if self.eat_word("DESC") {
                    false
                } else {
                    self.eat_word("ASC");
                    true
                };
                stmt.order_by.push(OrderKey { expr, asc });
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        if self.eat_word("LIMIT") {
            match self.next() {
                Some(Token::Int(n)) if n >= 0 => stmt.limit = Some(n as u64),
                other => {
                    return Err(DataError::Parse(format!(
                        "expected LIMIT count, found {other:?}"
                    )))
                }
            }
        }
        Ok(stmt)
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        let table = self.ident()?;
        // Optional alias: `jobs j` or `jobs AS j` — but not a clause keyword.
        let alias = if self.eat_word("AS") {
            Some(self.ident()?)
        } else if let Some(Token::Word(w)) = self.peek() {
            const CLAUSES: [&str; 9] = [
                "JOIN", "INNER", "ON", "WHERE", "GROUP", "HAVING", "ORDER", "LIMIT", "SELECT",
            ];
            if CLAUSES.contains(&w.as_str()) {
                None
            } else {
                Some(self.ident()?)
            }
        } else {
            None
        };
        Ok(TableRef { table, alias })
    }

    // Expression precedence: OR < AND < NOT < comparison < add < mul < unary.
    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_word("OR") {
            let right = self.and_expr()?;
            left = Expr::Binary {
                left: Box::new(left),
                op: BinOp::Or,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_word("AND") {
            let right = self.not_expr()?;
            left = Expr::Binary {
                left: Box::new(left),
                op: BinOp::And,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_word("NOT") {
            let inner = self.not_expr()?;
            return Ok(Expr::Unary {
                op: UnOp::Not,
                expr: Box::new(inner),
            });
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr> {
        let left = self.additive()?;

        // Postfix predicates: IS [NOT] NULL, [NOT] IN, [NOT] LIKE.
        if self.eat_word("IS") {
            let negated = self.eat_word("NOT");
            self.expect_word("NULL")?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        let negated = self.eat_word("NOT");
        if self.eat_word("IN") {
            self.expect(&Token::LParen)?;
            let mut list = Vec::new();
            loop {
                list.push(self.expr()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if self.eat_word("LIKE") {
            let pattern = self.additive()?;
            return Ok(Expr::Like {
                expr: Box::new(left),
                pattern: Box::new(pattern),
                negated,
            });
        }
        if negated {
            return Err(DataError::Parse("expected IN or LIKE after NOT".into()));
        }

        let op = match self.peek() {
            Some(Token::Eq) => Some(BinOp::Eq),
            Some(Token::Ne) => Some(BinOp::Ne),
            Some(Token::Lt) => Some(BinOp::Lt),
            Some(Token::Le) => Some(BinOp::Le),
            Some(Token::Gt) => Some(BinOp::Gt),
            Some(Token::Ge) => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.additive()?;
            return Ok(Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            });
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.multiplicative()?;
            left = Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                _ => break,
            };
            self.pos += 1;
            let right = self.unary()?;
            left = Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.eat(&Token::Minus) {
            let inner = self.unary()?;
            return Ok(Expr::Unary {
                op: UnOp::Neg,
                expr: Box::new(inner),
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.next() {
            Some(Token::Int(i)) => Ok(Expr::Literal(Datum::Int(i))),
            Some(Token::Float(f)) => Ok(Expr::Literal(Datum::Float(f))),
            Some(Token::Str(s)) => Ok(Expr::Literal(Datum::Text(s))),
            Some(Token::LParen) => {
                let inner = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(inner)
            }
            Some(Token::Word(w)) => match w.as_str() {
                "NULL" => Ok(Expr::Literal(Datum::Null)),
                "TRUE" => Ok(Expr::Literal(Datum::Bool(true))),
                "FALSE" => Ok(Expr::Literal(Datum::Bool(false))),
                _ => {
                    // Function call?
                    if self.eat(&Token::LParen) {
                        if self.eat(&Token::Star) {
                            self.expect(&Token::RParen)?;
                            return Ok(Expr::FnCall {
                                name: w,
                                args: vec![],
                                star: true,
                            });
                        }
                        let mut args = Vec::new();
                        if self.peek() != Some(&Token::RParen) {
                            loop {
                                args.push(self.expr()?);
                                if !self.eat(&Token::Comma) {
                                    break;
                                }
                            }
                        }
                        self.expect(&Token::RParen)?;
                        return Ok(Expr::FnCall {
                            name: w,
                            args,
                            star: false,
                        });
                    }
                    // Qualified column?
                    if self.eat(&Token::Dot) {
                        let col = self.ident()?;
                        return Ok(Expr::Column {
                            table: Some(w.to_ascii_lowercase()),
                            name: col,
                        });
                    }
                    Ok(Expr::Column {
                        table: None,
                        name: w.to_ascii_lowercase(),
                    })
                }
            },
            other => Err(DataError::Parse(format!(
                "unexpected token in expression: {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_create_table() {
        let stmt =
            parse("CREATE TABLE jobs (id INT, title TEXT, salary FLOAT, remote BOOL)").unwrap();
        match stmt {
            Stmt::CreateTable { name, columns } => {
                assert_eq!(name, "jobs");
                assert_eq!(columns.len(), 4);
                assert_eq!(columns[1], ("title".to_string(), ColumnType::Text));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn parse_insert_multi_row() {
        let stmt = parse("INSERT INTO jobs (id, title) VALUES (1, 'ds'), (2, 'mle')").unwrap();
        match stmt {
            Stmt::Insert(i) => {
                assert_eq!(i.table, "jobs");
                assert_eq!(i.columns, Some(vec!["id".into(), "title".into()]));
                assert_eq!(i.rows.len(), 2);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn parse_full_select() {
        let stmt = parse(
            "SELECT DISTINCT title, COUNT(*) AS n FROM jobs j \
             JOIN companies c ON j.company_id = c.id \
             WHERE salary >= 100000 AND city IN ('sf', 'oakland') \
             GROUP BY title HAVING COUNT(*) > 1 \
             ORDER BY n DESC, title LIMIT 5;",
        )
        .unwrap();
        let Stmt::Select(s) = stmt else {
            panic!("not a select")
        };
        assert!(s.distinct);
        assert_eq!(s.items.len(), 2);
        assert_eq!(s.from.as_ref().unwrap().binding(), "j");
        assert_eq!(s.joins.len(), 1);
        assert!(s.where_clause.is_some());
        assert_eq!(s.group_by.len(), 1);
        assert!(s.having.is_some());
        assert_eq!(s.order_by.len(), 2);
        assert!(!s.order_by[0].asc);
        assert!(s.order_by[1].asc);
        assert_eq!(s.limit, Some(5));
    }

    #[test]
    fn parse_not_like_and_is_null() {
        let Stmt::Select(s) =
            parse("SELECT * FROM t WHERE a NOT LIKE '%x%' AND b IS NOT NULL AND c IS NULL")
                .unwrap()
        else {
            panic!()
        };
        let w = s.where_clause.unwrap();
        assert!(!w.contains_aggregate());
        let text = format!("{w:?}");
        assert!(text.contains("Like"));
        assert!(text.contains("IsNull"));
    }

    #[test]
    fn parse_arithmetic_precedence() {
        let Stmt::Select(s) = parse("SELECT 1 + 2 * 3").unwrap() else {
            panic!()
        };
        let SelectItem::Expr { expr, .. } = &s.items[0] else {
            panic!()
        };
        // Must parse as 1 + (2 * 3).
        match expr {
            Expr::Binary {
                op: BinOp::Add,
                right,
                ..
            } => {
                assert!(matches!(**right, Expr::Binary { op: BinOp::Mul, .. }));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn parse_parenthesized_or() {
        let Stmt::Select(s) = parse("SELECT * FROM t WHERE (a = 1 OR b = 2) AND c = 3").unwrap()
        else {
            panic!()
        };
        match s.where_clause.unwrap() {
            Expr::Binary {
                op: BinOp::And,
                left,
                ..
            } => {
                assert!(matches!(*left, Expr::Binary { op: BinOp::Or, .. }));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn parse_literals() {
        let Stmt::Select(s) = parse("SELECT NULL, TRUE, FALSE, -5, 'text'").unwrap() else {
            panic!()
        };
        assert_eq!(s.items.len(), 5);
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse("SELECT 1 FROM t WHERE").is_err());
        assert!(parse("SELECT 1 42").is_err());
        assert!(parse("DELETE FROM t").is_err());
    }

    #[test]
    fn bad_limit_rejected() {
        assert!(parse("SELECT 1 LIMIT 'x'").is_err());
    }

    #[test]
    fn not_requires_in_or_like() {
        assert!(parse("SELECT * FROM t WHERE a NOT 5").is_err());
    }

    #[test]
    fn table_alias_forms() {
        let Stmt::Select(s) = parse("SELECT * FROM jobs AS j WHERE j.id = 1").unwrap() else {
            panic!()
        };
        assert_eq!(s.from.unwrap().alias, Some("j".into()));
        let Stmt::Select(s2) = parse("SELECT * FROM jobs j").unwrap() else {
            panic!()
        };
        assert_eq!(s2.from.unwrap().alias, Some("j".into()));
        let Stmt::Select(s3) = parse("SELECT * FROM jobs WHERE id = 1").unwrap() else {
            panic!()
        };
        assert_eq!(s3.from.unwrap().alias, None);
    }

    #[test]
    fn function_with_args() {
        let Stmt::Select(s) = parse("SELECT LOWER(title), SUM(salary) FROM jobs").unwrap() else {
            panic!()
        };
        assert_eq!(s.items.len(), 2);
        let SelectItem::Expr { expr, .. } = &s.items[1] else {
            panic!()
        };
        assert!(expr.contains_aggregate());
    }
}
