//! SQL abstract syntax tree.

use crate::schema::ColumnType;
use crate::value::Datum;

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `CREATE TABLE name (col type, ...)`
    CreateTable {
        /// Table name (lowercased).
        name: String,
        /// Column declarations.
        columns: Vec<(String, ColumnType)>,
    },
    /// `INSERT INTO name [(cols)] VALUES (...), (...)`
    Insert(InsertStmt),
    /// `SELECT ...`
    Select(Box<SelectStmt>),
}

/// An INSERT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct InsertStmt {
    /// Target table (lowercased).
    pub table: String,
    /// Optional explicit column list (lowercased).
    pub columns: Option<Vec<String>>,
    /// Row value tuples (constant expressions).
    pub rows: Vec<Vec<Expr>>,
}

/// A SELECT statement.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SelectStmt {
    /// `SELECT DISTINCT`?
    pub distinct: bool,
    /// Projection list.
    pub items: Vec<SelectItem>,
    /// FROM table (None for table-less selects like `SELECT 1`).
    pub from: Option<TableRef>,
    /// INNER JOINs in declaration order.
    pub joins: Vec<Join>,
    /// WHERE predicate.
    pub where_clause: Option<Expr>,
    /// GROUP BY expressions.
    pub group_by: Vec<Expr>,
    /// HAVING predicate.
    pub having: Option<Expr>,
    /// ORDER BY keys.
    pub order_by: Vec<OrderKey>,
    /// LIMIT row count.
    pub limit: Option<u64>,
}

/// One projection item.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// An expression with an optional alias.
    Expr {
        /// The projected expression.
        expr: Expr,
        /// `AS alias`.
        alias: Option<String>,
    },
}

/// A table reference with optional alias.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// Table name (lowercased).
    pub table: String,
    /// Alias (lowercased).
    pub alias: Option<String>,
}

impl TableRef {
    /// The name this reference binds in scopes (alias if present).
    pub fn binding(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.table)
    }
}

/// An inner join.
#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    /// Joined table.
    pub table: TableRef,
    /// ON predicate.
    pub on: Expr,
}

/// An ORDER BY key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    /// Sort expression.
    pub expr: Expr,
    /// Ascending (`true`) or descending.
    pub asc: bool,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// `NOT`
    Not,
    /// Unary `-`
    Neg,
}

/// A SQL expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal value.
    Literal(Datum),
    /// A (possibly table-qualified) column reference, lowercased.
    Column {
        /// Qualifier (table name or alias).
        table: Option<String>,
        /// Column name.
        name: String,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Left operand.
        left: Box<Expr>,
        /// Operator.
        op: BinOp,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Function call, e.g. `COUNT(*)`, `SUM(salary)`, `LOWER(title)`.
    FnCall {
        /// Uppercased function name.
        name: String,
        /// Arguments (empty for `COUNT(*)` with `star` set).
        args: Vec<Expr>,
        /// `COUNT(*)` marker.
        star: bool,
    },
    /// `expr [NOT] IN (v1, v2, ...)`
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// List elements.
        list: Vec<Expr>,
        /// NOT IN?
        negated: bool,
    },
    /// `expr [NOT] LIKE pattern`
    Like {
        /// Tested expression.
        expr: Box<Expr>,
        /// Pattern with `%`/`_` wildcards.
        pattern: Box<Expr>,
        /// NOT LIKE?
        negated: bool,
    },
    /// `expr IS [NOT] NULL`
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// IS NOT NULL?
        negated: bool,
    },
}

/// Aggregate function names the executor recognizes.
pub const AGGREGATES: [&str; 5] = ["COUNT", "SUM", "AVG", "MIN", "MAX"];

impl Expr {
    /// True if the expression contains an aggregate call.
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Literal(_) | Expr::Column { .. } => false,
            Expr::Unary { expr, .. } => expr.contains_aggregate(),
            Expr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            Expr::FnCall { name, args, .. } => {
                AGGREGATES.contains(&name.as_str()) || args.iter().any(Expr::contains_aggregate)
            }
            Expr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(Expr::contains_aggregate)
            }
            Expr::Like { expr, pattern, .. } => {
                expr.contains_aggregate() || pattern.contains_aggregate()
            }
            Expr::IsNull { expr, .. } => expr.contains_aggregate(),
        }
    }

    /// Convenience constructor for a bare column reference.
    pub fn col(name: &str) -> Expr {
        Expr::Column {
            table: None,
            name: name.to_ascii_lowercase(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_aggregate_walks_tree() {
        let agg = Expr::FnCall {
            name: "COUNT".into(),
            args: vec![],
            star: true,
        };
        assert!(agg.contains_aggregate());
        let nested = Expr::Binary {
            left: Box::new(Expr::col("x")),
            op: BinOp::Gt,
            right: Box::new(agg),
        };
        assert!(nested.contains_aggregate());
        assert!(!Expr::col("x").contains_aggregate());
        let scalar_fn = Expr::FnCall {
            name: "LOWER".into(),
            args: vec![Expr::col("title")],
            star: false,
        };
        assert!(!scalar_fn.contains_aggregate());
    }

    #[test]
    fn table_ref_binding_prefers_alias() {
        let t = TableRef {
            table: "jobs".into(),
            alias: Some("j".into()),
        };
        assert_eq!(t.binding(), "j");
        let t2 = TableRef {
            table: "jobs".into(),
            alias: None,
        };
        assert_eq!(t2.binding(), "jobs");
    }

    #[test]
    fn col_lowercases() {
        assert_eq!(
            Expr::col("TITLE"),
            Expr::Column {
                table: None,
                name: "title".into()
            }
        );
    }
}
