//! Key-value store.
//!
//! The simplest of the data registry's modalities (§V-D): JSON values under
//! string keys with prefix scans — used in the HR scenario for session
//! state, cached model outputs, and feature lookups.

use std::collections::BTreeMap;

use parking_lot::RwLock;
use serde_json::Value;

use crate::error::DataError;
use crate::Result;

/// Thread-safe ordered key-value store.
#[derive(Default)]
pub struct KvStore {
    map: RwLock<BTreeMap<String, Value>>,
}

impl KvStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets a key.
    pub fn put(&self, key: impl Into<String>, value: Value) {
        self.map.write().insert(key.into(), value);
    }

    /// Gets a key.
    pub fn get(&self, key: &str) -> Result<Value> {
        self.map
            .read()
            .get(key)
            .cloned()
            .ok_or_else(|| DataError::NotFound(format!("key {key}")))
    }

    /// Gets a key or returns a default.
    pub fn get_or(&self, key: &str, default: Value) -> Value {
        self.map.read().get(key).cloned().unwrap_or(default)
    }

    /// Deletes a key; returns the previous value if present.
    pub fn delete(&self, key: &str) -> Option<Value> {
        self.map.write().remove(key)
    }

    /// All `(key, value)` pairs whose key starts with `prefix`, in key order.
    pub fn scan_prefix(&self, prefix: &str) -> Vec<(String, Value)> {
        self.map
            .read()
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// True if no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.map.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn put_get_delete() {
        let kv = KvStore::new();
        kv.put("a", json!(1));
        assert_eq!(kv.get("a").unwrap(), json!(1));
        assert_eq!(kv.delete("a"), Some(json!(1)));
        assert!(kv.get("a").is_err());
        assert_eq!(kv.delete("a"), None);
    }

    #[test]
    fn get_or_defaults() {
        let kv = KvStore::new();
        assert_eq!(kv.get_or("missing", json!("d")), json!("d"));
        kv.put("present", json!(2));
        assert_eq!(kv.get_or("present", json!("d")), json!(2));
    }

    #[test]
    fn overwrite_replaces() {
        let kv = KvStore::new();
        kv.put("k", json!(1));
        kv.put("k", json!(2));
        assert_eq!(kv.get("k").unwrap(), json!(2));
        assert_eq!(kv.len(), 1);
    }

    #[test]
    fn prefix_scan_in_order() {
        let kv = KvStore::new();
        kv.put("session:1:a", json!(1));
        kv.put("session:1:b", json!(2));
        kv.put("session:2:a", json!(3));
        kv.put("other", json!(4));
        let hits = kv.scan_prefix("session:1:");
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].0, "session:1:a");
        assert_eq!(hits[1].0, "session:1:b");
        assert!(kv.scan_prefix("zzz").is_empty());
    }

    #[test]
    fn len_and_empty() {
        let kv = KvStore::new();
        assert!(kv.is_empty());
        kv.put("x", json!(null));
        assert_eq!(kv.len(), 1);
        assert!(!kv.is_empty());
    }
}
