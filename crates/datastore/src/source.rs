//! The uniform `DataSource` interface the data planner queries (§V-G).
//!
//! Each modality — relational, document, graph, KV, and parametric (an LLM
//! used as a data source; implemented in `blueprint-llmsim`) — is wrapped as
//! a [`DataSource`]: it answers [`SourceQuery`]s with JSON results and
//! provides per-request [`CostEstimate`]s from its statistics, which the
//! optimizer uses to pick sources under QoS constraints.

use std::sync::Arc;

use serde::{Deserialize, Serialize};
use serde_json::{json, Value};

use crate::document::DocumentStore;
use crate::error::DataError;
use crate::graph::PropertyGraph;
use crate::kv::KvStore;
use crate::relational::RelationalDb;
use crate::Result;

/// A request to a data source.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SourceQuery {
    /// SQL text for relational sources.
    Sql(String),
    /// Ranked text search over documents.
    DocSearch {
        /// Keyword query.
        query: String,
        /// Max hits.
        limit: usize,
    },
    /// Exact field filter over documents.
    DocFilter {
        /// Top-level field name.
        field: String,
        /// Value to match.
        value: Value,
    },
    /// Related-node expansion in a graph (taxonomy lookup).
    GraphRelated {
        /// Start node id.
        node: String,
        /// Optional edge-type restriction.
        edge_type: Option<String>,
        /// Hop bound.
        depth: usize,
    },
    /// Key lookup.
    KvGet(String),
    /// Natural-language question to a parametric source (LLM).
    Knowledge(String),
}

impl SourceQuery {
    /// Short operator name for plans and traces.
    pub fn op_name(&self) -> &'static str {
        match self {
            SourceQuery::Sql(_) => "sql",
            SourceQuery::DocSearch { .. } => "doc-search",
            SourceQuery::DocFilter { .. } => "doc-filter",
            SourceQuery::GraphRelated { .. } => "graph-related",
            SourceQuery::KvGet(_) => "kv-get",
            SourceQuery::Knowledge(_) => "knowledge",
        }
    }
}

/// A data source's answer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SourceResult {
    /// JSON payload (usually an array of objects).
    pub data: Value,
    /// Number of rows/items returned.
    pub rows: usize,
}

impl SourceResult {
    /// Wraps a JSON array, deriving the row count.
    pub fn from_array(data: Value) -> Self {
        let rows = data.as_array().map(Vec::len).unwrap_or(1);
        SourceResult { data, rows }
    }
}

/// Estimated QoS of answering a query (consumed by the optimizer).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostEstimate {
    /// Monetary cost in cost units.
    pub cost_units: f64,
    /// Expected latency in simulated microseconds.
    pub latency_micros: u64,
    /// Expected answer accuracy in `[0, 1]`.
    pub accuracy: f64,
}

impl CostEstimate {
    /// A free, instant, perfect estimate.
    pub const FREE: CostEstimate = CostEstimate {
        cost_units: 0.0,
        latency_micros: 0,
        accuracy: 1.0,
    };
}

/// A queryable enterprise data source.
pub trait DataSource: Send + Sync {
    /// Registry name of this source.
    fn name(&self) -> &str;

    /// Modality tag (`relational`, `document`, `graph`, `kv`, `parametric`).
    fn modality(&self) -> &'static str;

    /// True if this source can answer the query shape.
    fn supports(&self, query: &SourceQuery) -> bool;

    /// Estimated cost of answering (planners call this before `query`).
    fn estimate(&self, query: &SourceQuery) -> CostEstimate;

    /// Answers the query.
    fn query(&self, query: &SourceQuery) -> Result<SourceResult>;
}

/// Relational database exposed as a data source.
pub struct RelationalSource {
    name: String,
    db: Arc<RelationalDb>,
}

impl RelationalSource {
    /// Wraps a database under a registry name.
    pub fn new(name: impl Into<String>, db: Arc<RelationalDb>) -> Self {
        RelationalSource {
            name: name.into(),
            db,
        }
    }

    /// The wrapped database.
    pub fn db(&self) -> &Arc<RelationalDb> {
        &self.db
    }
}

impl DataSource for RelationalSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn modality(&self) -> &'static str {
        "relational"
    }

    fn supports(&self, query: &SourceQuery) -> bool {
        matches!(query, SourceQuery::Sql(_))
    }

    fn estimate(&self, query: &SourceQuery) -> CostEstimate {
        match query {
            SourceQuery::Sql(sql) => {
                // Rough: latency scales with the referenced tables' sizes.
                let mut rows = 0usize;
                for t in self.db.table_names() {
                    if sql.to_ascii_lowercase().contains(&t) {
                        rows += self.db.row_count(&t);
                    }
                }
                CostEstimate {
                    cost_units: 0.001,
                    latency_micros: 50 + rows as u64 / 10,
                    accuracy: 1.0,
                }
            }
            _ => CostEstimate::FREE,
        }
    }

    fn query(&self, query: &SourceQuery) -> Result<SourceResult> {
        match query {
            SourceQuery::Sql(sql) => {
                let rs = self.db.execute(sql)?;
                Ok(SourceResult {
                    rows: rs.len(),
                    data: rs.to_json(),
                })
            }
            other => Err(DataError::Eval(format!(
                "relational source cannot answer {}",
                other.op_name()
            ))),
        }
    }
}

/// Document store exposed as a data source.
pub struct DocumentSource {
    name: String,
    store: Arc<DocumentStore>,
}

impl DocumentSource {
    /// Wraps a document store under a registry name.
    pub fn new(name: impl Into<String>, store: Arc<DocumentStore>) -> Self {
        DocumentSource {
            name: name.into(),
            store,
        }
    }
}

impl DataSource for DocumentSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn modality(&self) -> &'static str {
        "document"
    }

    fn supports(&self, query: &SourceQuery) -> bool {
        matches!(
            query,
            SourceQuery::DocSearch { .. } | SourceQuery::DocFilter { .. }
        )
    }

    fn estimate(&self, query: &SourceQuery) -> CostEstimate {
        let n = self.store.len() as u64;
        match query {
            SourceQuery::DocSearch { .. } => CostEstimate {
                cost_units: 0.001,
                latency_micros: 30 + n / 20,
                accuracy: 0.9, // ranked retrieval is approximate
            },
            SourceQuery::DocFilter { .. } => CostEstimate {
                cost_units: 0.001,
                latency_micros: 20 + n / 10,
                accuracy: 1.0,
            },
            _ => CostEstimate::FREE,
        }
    }

    fn query(&self, query: &SourceQuery) -> Result<SourceResult> {
        match query {
            SourceQuery::DocSearch { query, limit } => {
                let hits = self.store.search(query, *limit);
                let mut out = Vec::with_capacity(hits.len());
                for h in hits {
                    let doc = self.store.get(&h.id)?;
                    out.push(json!({"id": doc.id, "score": h.score, "body": doc.body}));
                }
                Ok(SourceResult::from_array(Value::Array(out)))
            }
            SourceQuery::DocFilter { field, value } => {
                let docs = self.store.filter_eq(field, value);
                let out: Vec<Value> = docs
                    .into_iter()
                    .map(|d| json!({"id": d.id, "body": d.body}))
                    .collect();
                Ok(SourceResult::from_array(Value::Array(out)))
            }
            other => Err(DataError::Eval(format!(
                "document source cannot answer {}",
                other.op_name()
            ))),
        }
    }
}

/// Property graph exposed as a data source.
pub struct GraphSource {
    name: String,
    graph: Arc<PropertyGraph>,
}

impl GraphSource {
    /// Wraps a graph under a registry name.
    pub fn new(name: impl Into<String>, graph: Arc<PropertyGraph>) -> Self {
        GraphSource {
            name: name.into(),
            graph,
        }
    }
}

impl DataSource for GraphSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn modality(&self) -> &'static str {
        "graph"
    }

    fn supports(&self, query: &SourceQuery) -> bool {
        matches!(query, SourceQuery::GraphRelated { .. })
    }

    fn estimate(&self, query: &SourceQuery) -> CostEstimate {
        match query {
            SourceQuery::GraphRelated { depth, .. } => CostEstimate {
                cost_units: 0.001,
                latency_micros: 40 * (*depth as u64 + 1),
                accuracy: 1.0,
            },
            _ => CostEstimate::FREE,
        }
    }

    fn query(&self, query: &SourceQuery) -> Result<SourceResult> {
        match query {
            SourceQuery::GraphRelated {
                node,
                edge_type,
                depth,
            } => {
                let nodes = self
                    .graph
                    .traverse(node, edge_type.as_deref(), *depth, true)?;
                let out: Vec<Value> = nodes
                    .into_iter()
                    .map(|n| json!({"id": n.id, "label": n.label, "props": n.props}))
                    .collect();
                Ok(SourceResult::from_array(Value::Array(out)))
            }
            other => Err(DataError::Eval(format!(
                "graph source cannot answer {}",
                other.op_name()
            ))),
        }
    }
}

/// KV store exposed as a data source.
pub struct KvSource {
    name: String,
    kv: Arc<KvStore>,
}

impl KvSource {
    /// Wraps a KV store under a registry name.
    pub fn new(name: impl Into<String>, kv: Arc<KvStore>) -> Self {
        KvSource {
            name: name.into(),
            kv,
        }
    }
}

impl DataSource for KvSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn modality(&self) -> &'static str {
        "kv"
    }

    fn supports(&self, query: &SourceQuery) -> bool {
        matches!(query, SourceQuery::KvGet(_))
    }

    fn estimate(&self, query: &SourceQuery) -> CostEstimate {
        match query {
            SourceQuery::KvGet(_) => CostEstimate {
                cost_units: 0.0001,
                latency_micros: 5,
                accuracy: 1.0,
            },
            _ => CostEstimate::FREE,
        }
    }

    fn query(&self, query: &SourceQuery) -> Result<SourceResult> {
        match query {
            SourceQuery::KvGet(key) => {
                let v = self.kv.get(key)?;
                Ok(SourceResult { data: v, rows: 1 })
            }
            other => Err(DataError::Eval(format!(
                "kv source cannot answer {}",
                other.op_name()
            ))),
        }
    }
}

/// Decorator injecting transient outages into any [`DataSource`].
///
/// Queries consult the attached fault injector (keyed by source name, query
/// op, and a call ordinal); a fired fault surfaces as
/// [`DataError::Unavailable`], which the data planner treats as a signal to
/// retry or fall back to a sibling source — estimates and capability checks
/// pass through untouched so planning still sees the real source.
pub struct FaultInjectedSource {
    inner: Arc<dyn DataSource>,
    injector: Arc<blueprint_resilience::FaultInjector>,
    calls: std::sync::atomic::AtomicU64,
}

impl FaultInjectedSource {
    /// Wraps `inner` with fault injection.
    pub fn wrap(
        inner: Arc<dyn DataSource>,
        injector: Arc<blueprint_resilience::FaultInjector>,
    ) -> Self {
        FaultInjectedSource {
            inner,
            injector,
            calls: std::sync::atomic::AtomicU64::new(0),
        }
    }
}

impl DataSource for FaultInjectedSource {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn modality(&self) -> &'static str {
        self.inner.modality()
    }

    fn supports(&self, query: &SourceQuery) -> bool {
        self.inner.supports(query)
    }

    fn estimate(&self, query: &SourceQuery) -> CostEstimate {
        self.inner.estimate(query)
    }

    fn query(&self, query: &SourceQuery) -> Result<SourceResult> {
        if !self.injector.query_armed() {
            return self.inner.query(query);
        }
        let n = self
            .calls
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let key = format!("{}:{}#{}", self.inner.name(), query.op_name(), n);
        if self.injector.query_fault(&key).is_some() {
            return Err(DataError::Unavailable(format!(
                "injected outage at source `{}`",
                self.inner.name()
            )));
        }
        self.inner.query(query)
    }
}

/// Decorator metering queries against any [`DataSource`].
///
/// Every `query` call increments `blueprint.datastore.queries`; failures
/// additionally increment `blueprint.datastore.errors`. Estimates and
/// capability checks pass through unmetered — they are planning-time
/// lookups, not data access.
pub struct InstrumentedSource {
    inner: Arc<dyn DataSource>,
    queries: blueprint_observability::Counter,
    errors: blueprint_observability::Counter,
}

impl InstrumentedSource {
    /// Wraps `inner`, resolving the datastore instruments from `metrics`.
    pub fn wrap(
        inner: Arc<dyn DataSource>,
        metrics: &blueprint_observability::MetricsRegistry,
    ) -> Self {
        InstrumentedSource {
            inner,
            queries: metrics.counter("blueprint.datastore.queries"),
            errors: metrics.counter("blueprint.datastore.errors"),
        }
    }
}

impl DataSource for InstrumentedSource {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn modality(&self) -> &'static str {
        self.inner.modality()
    }

    fn supports(&self, query: &SourceQuery) -> bool {
        self.inner.supports(query)
    }

    fn estimate(&self, query: &SourceQuery) -> CostEstimate {
        self.inner.estimate(query)
    }

    fn query(&self, query: &SourceQuery) -> Result<SourceResult> {
        self.queries.inc();
        let result = self.inner.query(query);
        if result.is_err() {
            self.errors.inc();
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn relational() -> RelationalSource {
        let db = Arc::new(RelationalDb::new());
        db.execute("CREATE TABLE jobs (id INT, title TEXT)")
            .unwrap();
        db.execute("INSERT INTO jobs VALUES (1, 'ds'), (2, 'mle')")
            .unwrap();
        RelationalSource::new("hr-db", db)
    }

    #[test]
    fn instrumented_source_meters_queries_and_errors() {
        let metrics = blueprint_observability::MetricsRegistry::new();
        let s = InstrumentedSource::wrap(Arc::new(relational()), &metrics);
        assert_eq!(s.modality(), "relational");
        s.query(&SourceQuery::Sql("SELECT 1".into())).unwrap();
        assert!(s.query(&SourceQuery::KvGet("x".into())).is_err());
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("blueprint.datastore.queries"), 2);
        assert_eq!(snap.counter("blueprint.datastore.errors"), 1);
        // Planning-time lookups are unmetered.
        s.estimate(&SourceQuery::Sql("SELECT 1".into()));
        assert_eq!(metrics.snapshot().counter("blueprint.datastore.queries"), 2);
    }

    #[test]
    fn relational_source_answers_sql() {
        let s = relational();
        assert_eq!(s.modality(), "relational");
        assert!(s.supports(&SourceQuery::Sql("SELECT 1".into())));
        assert!(!s.supports(&SourceQuery::KvGet("x".into())));
        let r = s
            .query(&SourceQuery::Sql(
                "SELECT title FROM jobs ORDER BY id".into(),
            ))
            .unwrap();
        assert_eq!(r.rows, 2);
        assert_eq!(r.data[0]["title"], json!("ds"));
        assert!(s.query(&SourceQuery::KvGet("x".into())).is_err());
    }

    #[test]
    fn relational_estimate_scales_with_rows() {
        let s = relational();
        let small = s.estimate(&SourceQuery::Sql("SELECT 1".into()));
        let scan = s.estimate(&SourceQuery::Sql("SELECT * FROM jobs".into()));
        assert!(scan.latency_micros >= small.latency_micros);
        assert_eq!(scan.accuracy, 1.0);
    }

    #[test]
    fn document_source_search_and_filter() {
        let store = Arc::new(DocumentStore::new());
        store
            .put("p1", json!({"name": "Ada", "summary": "data scientist"}))
            .unwrap();
        store
            .put("p2", json!({"name": "Grace", "summary": "compiler expert"}))
            .unwrap();
        let s = DocumentSource::new("profiles", store);
        assert_eq!(s.modality(), "document");
        let r = s
            .query(&SourceQuery::DocSearch {
                query: "data scientist".into(),
                limit: 5,
            })
            .unwrap();
        assert_eq!(r.rows, 1);
        assert_eq!(r.data[0]["id"], json!("p1"));
        let f = s
            .query(&SourceQuery::DocFilter {
                field: "name".into(),
                value: json!("Grace"),
            })
            .unwrap();
        assert_eq!(f.rows, 1);
        // Search estimates are marked approximate.
        assert!(
            s.estimate(&SourceQuery::DocSearch {
                query: "x".into(),
                limit: 1
            })
            .accuracy
                < 1.0
        );
        assert!(s.query(&SourceQuery::Sql("SELECT 1".into())).is_err());
    }

    #[test]
    fn graph_source_expands_related() {
        let g = Arc::new(PropertyGraph::new());
        g.add_node("a", "title", json!({"name": "a"})).unwrap();
        g.add_node("b", "title", json!({"name": "b"})).unwrap();
        g.add_edge("a", "b", "related_to").unwrap();
        let s = GraphSource::new("taxonomy", g);
        let r = s
            .query(&SourceQuery::GraphRelated {
                node: "a".into(),
                edge_type: None,
                depth: 1,
            })
            .unwrap();
        assert_eq!(r.rows, 1);
        assert_eq!(r.data[0]["id"], json!("b"));
        let est = s.estimate(&SourceQuery::GraphRelated {
            node: "a".into(),
            edge_type: None,
            depth: 3,
        });
        assert_eq!(est.latency_micros, 160);
        assert!(s.query(&SourceQuery::KvGet("x".into())).is_err());
    }

    #[test]
    fn kv_source_gets() {
        let kv = Arc::new(KvStore::new());
        kv.put("k", json!({"v": 1}));
        let s = KvSource::new("cache", kv);
        let r = s.query(&SourceQuery::KvGet("k".into())).unwrap();
        assert_eq!(r.data["v"], json!(1));
        assert!(s.query(&SourceQuery::KvGet("missing".into())).is_err());
        assert!(s.estimate(&SourceQuery::KvGet("k".into())).latency_micros <= 10);
    }

    #[test]
    fn op_names_cover_variants() {
        assert_eq!(SourceQuery::Sql("s".into()).op_name(), "sql");
        assert_eq!(
            SourceQuery::DocSearch {
                query: "q".into(),
                limit: 1
            }
            .op_name(),
            "doc-search"
        );
        assert_eq!(
            SourceQuery::DocFilter {
                field: "f".into(),
                value: json!(1)
            }
            .op_name(),
            "doc-filter"
        );
        assert_eq!(
            SourceQuery::GraphRelated {
                node: "n".into(),
                edge_type: None,
                depth: 1
            }
            .op_name(),
            "graph-related"
        );
        assert_eq!(SourceQuery::KvGet("k".into()).op_name(), "kv-get");
        assert_eq!(SourceQuery::Knowledge("q".into()).op_name(), "knowledge");
    }

    #[test]
    fn source_result_from_array() {
        let r = SourceResult::from_array(json!([1, 2, 3]));
        assert_eq!(r.rows, 3);
        let scalar = SourceResult::from_array(json!("x"));
        assert_eq!(scalar.rows, 1);
    }

    #[test]
    fn fault_injected_source_surfaces_unavailable() {
        use blueprint_resilience::{FaultInjector, FaultPlan, FaultSite};
        let always = Arc::new(FaultInjector::new(
            FaultPlan::none(1).with_query_fail_rate(1.0),
        ));
        let faulty = FaultInjectedSource::wrap(Arc::new(relational()), Arc::clone(&always));
        // Planning surface is untouched...
        assert_eq!(faulty.name(), "hr-db");
        assert_eq!(faulty.modality(), "relational");
        let q = SourceQuery::Sql("SELECT title FROM jobs".into());
        assert!(faulty.supports(&q));
        assert_eq!(faulty.estimate(&q), relational().estimate(&q));
        // ...but the query path reports a transient outage, tagged in the log.
        assert!(matches!(faulty.query(&q), Err(DataError::Unavailable(_))));
        assert_eq!(always.count(FaultSite::DataQuery), 1);

        // A clean injector passes queries straight through.
        let clean = Arc::new(FaultInjector::new(FaultPlan::none(1)));
        let healthy = FaultInjectedSource::wrap(Arc::new(relational()), clean);
        assert_eq!(healthy.query(&q).unwrap().rows, 2);
    }
}
