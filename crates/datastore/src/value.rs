//! Scalar values and rows flowing through the relational engine.

use std::cmp::Ordering;
use std::fmt;

use serde::{Deserialize, Serialize};
use serde_json::Value;

/// A scalar datum stored in a table cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Datum {
    /// SQL NULL.
    Null,
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 text.
    Text(String),
    /// Boolean.
    Bool(bool),
}

/// One table row.
pub type Row = Vec<Datum>;

impl Datum {
    /// True if NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Datum::Null)
    }

    /// Numeric view (ints widen to float); `None` for non-numerics.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Datum::Int(i) => Some(*i as f64),
            Datum::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Text view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Datum::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Datum::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// SQL three-valued-logic equality: NULL never equals anything.
    pub fn sql_eq(&self, other: &Datum) -> Option<bool> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(match (self, other) {
            (Datum::Text(a), Datum::Text(b)) => a == b,
            (Datum::Bool(a), Datum::Bool(b)) => a == b,
            _ => match (self.as_f64(), other.as_f64()) {
                (Some(a), Some(b)) => a == b,
                _ => false,
            },
        })
    }

    /// SQL comparison for ORDER BY and range predicates; NULL compares less
    /// than everything (SQLite convention), mixed types compare by type rank.
    pub fn sql_cmp(&self, other: &Datum) -> Ordering {
        fn rank(d: &Datum) -> u8 {
            match d {
                Datum::Null => 0,
                Datum::Int(_) | Datum::Float(_) => 1,
                Datum::Text(_) => 2,
                Datum::Bool(_) => 3,
            }
        }
        match (self, other) {
            (Datum::Null, Datum::Null) => Ordering::Equal,
            (Datum::Text(a), Datum::Text(b)) => a.cmp(b),
            (Datum::Bool(a), Datum::Bool(b)) => a.cmp(b),
            _ => match (self.as_f64(), other.as_f64()) {
                (Some(a), Some(b)) => a.partial_cmp(&b).unwrap_or(Ordering::Equal),
                _ => rank(self).cmp(&rank(other)),
            },
        }
    }

    /// Converts to JSON.
    pub fn to_json(&self) -> Value {
        match self {
            Datum::Null => Value::Null,
            Datum::Int(i) => Value::from(*i),
            Datum::Float(f) => serde_json::Number::from_f64(*f)
                .map(Value::Number)
                .unwrap_or(Value::Null),
            Datum::Text(s) => Value::String(s.clone()),
            Datum::Bool(b) => Value::Bool(*b),
        }
    }

    /// Converts from JSON (arrays/objects become their JSON text).
    pub fn from_json(v: &Value) -> Datum {
        match v {
            Value::Null => Datum::Null,
            Value::Bool(b) => Datum::Bool(*b),
            Value::Number(n) => {
                if let Some(i) = n.as_i64() {
                    Datum::Int(i)
                } else {
                    Datum::Float(n.as_f64().unwrap_or(0.0))
                }
            }
            Value::String(s) => Datum::Text(s.clone()),
            other => Datum::Text(other.to_string()),
        }
    }
}

impl PartialEq for Datum {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Datum::Null, Datum::Null) => true,
            (Datum::Text(a), Datum::Text(b)) => a == b,
            (Datum::Bool(a), Datum::Bool(b)) => a == b,
            (Datum::Int(a), Datum::Int(b)) => a == b,
            (Datum::Float(a), Datum::Float(b)) => a == b,
            (Datum::Int(a), Datum::Float(b)) | (Datum::Float(b), Datum::Int(a)) => *a as f64 == *b,
            _ => false,
        }
    }
}

impl fmt::Display for Datum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Datum::Null => f.write_str("NULL"),
            Datum::Int(i) => write!(f, "{i}"),
            Datum::Float(x) => write!(f, "{x}"),
            Datum::Text(s) => f.write_str(s),
            Datum::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Datum {
    fn from(i: i64) -> Self {
        Datum::Int(i)
    }
}

impl From<f64> for Datum {
    fn from(f: f64) -> Self {
        Datum::Float(f)
    }
}

impl From<&str> for Datum {
    fn from(s: &str) -> Self {
        Datum::Text(s.to_string())
    }
}

impl From<String> for Datum {
    fn from(s: String) -> Self {
        Datum::Text(s)
    }
}

impl From<bool> for Datum {
    fn from(b: bool) -> Self {
        Datum::Bool(b)
    }
}

/// Hashable key form of a datum, used for GROUP BY keys and hash indices
/// (floats are keyed by bit pattern).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum DatumKey {
    /// NULL key.
    Null,
    /// Integer key (floats that are whole numbers normalize here).
    Int(i64),
    /// Float key by bit pattern.
    Float(u64),
    /// Text key.
    Text(String),
    /// Bool key.
    Bool(bool),
}

impl From<&Datum> for DatumKey {
    fn from(d: &Datum) -> Self {
        match d {
            Datum::Null => DatumKey::Null,
            Datum::Int(i) => DatumKey::Int(*i),
            Datum::Float(f) => {
                if f.fract() == 0.0
                    && f.is_finite()
                    && *f >= i64::MIN as f64
                    && *f <= i64::MAX as f64
                {
                    DatumKey::Int(*f as i64)
                } else {
                    DatumKey::Float(f.to_bits())
                }
            }
            Datum::Text(s) => DatumKey::Text(s.clone()),
            Datum::Bool(b) => DatumKey::Bool(*b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn null_propagates_in_sql_eq() {
        assert_eq!(Datum::Null.sql_eq(&Datum::Int(1)), None);
        assert_eq!(Datum::Int(1).sql_eq(&Datum::Null), None);
        assert_eq!(Datum::Int(1).sql_eq(&Datum::Int(1)), Some(true));
    }

    #[test]
    fn numeric_widening_in_eq() {
        assert_eq!(Datum::Int(2).sql_eq(&Datum::Float(2.0)), Some(true));
        assert_eq!(Datum::Int(2), Datum::Float(2.0));
        assert_ne!(Datum::Int(2), Datum::Float(2.5));
    }

    #[test]
    fn cross_type_eq_is_false() {
        assert_eq!(Datum::Text("1".into()).sql_eq(&Datum::Int(1)), Some(false));
        assert_eq!(Datum::Bool(true).sql_eq(&Datum::Int(1)), Some(false));
    }

    #[test]
    fn ordering_null_first() {
        assert_eq!(Datum::Null.sql_cmp(&Datum::Int(0)), Ordering::Less);
        assert_eq!(Datum::Int(0).sql_cmp(&Datum::Null), Ordering::Greater);
        assert_eq!(Datum::Null.sql_cmp(&Datum::Null), Ordering::Equal);
    }

    #[test]
    fn ordering_within_types() {
        assert_eq!(Datum::Int(1).sql_cmp(&Datum::Float(1.5)), Ordering::Less);
        assert_eq!(
            Datum::Text("a".into()).sql_cmp(&Datum::Text("b".into())),
            Ordering::Less
        );
        assert_eq!(
            Datum::Bool(false).sql_cmp(&Datum::Bool(true)),
            Ordering::Less
        );
    }

    #[test]
    fn json_round_trip() {
        for v in [json!(null), json!(true), json!(5), json!(2.5), json!("hi")] {
            let d = Datum::from_json(&v);
            assert_eq!(d.to_json(), v);
        }
        // Composite JSON values flatten to their text form.
        let d = Datum::from_json(&json!([1, 2]));
        assert_eq!(d, Datum::Text("[1,2]".into()));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Datum::Null.to_string(), "NULL");
        assert_eq!(Datum::Int(3).to_string(), "3");
        assert_eq!(Datum::Text("x".into()).to_string(), "x");
        assert_eq!(Datum::Bool(true).to_string(), "true");
    }

    #[test]
    fn from_conversions() {
        assert_eq!(Datum::from(3i64), Datum::Int(3));
        assert_eq!(Datum::from(2.5f64), Datum::Float(2.5));
        assert_eq!(Datum::from("s"), Datum::Text("s".into()));
        assert_eq!(Datum::from(String::from("t")), Datum::Text("t".into()));
        assert_eq!(Datum::from(true), Datum::Bool(true));
    }

    #[test]
    fn datum_key_normalizes_whole_floats() {
        assert_eq!(DatumKey::from(&Datum::Float(2.0)), DatumKey::Int(2));
        assert_eq!(DatumKey::from(&Datum::Int(2)), DatumKey::Int(2));
        assert!(matches!(
            DatumKey::from(&Datum::Float(2.5)),
            DatumKey::Float(_)
        ));
    }

    #[test]
    fn as_views() {
        assert_eq!(Datum::Int(1).as_f64(), Some(1.0));
        assert_eq!(Datum::Text("x".into()).as_f64(), None);
        assert_eq!(Datum::Text("x".into()).as_str(), Some("x"));
        assert_eq!(Datum::Bool(true).as_bool(), Some(true));
        assert!(Datum::Null.is_null());
    }
}
