//! Table schemas for the relational substrate.

use serde::{Deserialize, Serialize};

use crate::error::DataError;
use crate::value::Datum;
use crate::Result;

/// Column types supported by the relational engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ColumnType {
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 text.
    Text,
    /// Boolean.
    Bool,
}

impl ColumnType {
    /// Whether a datum may be stored in a column of this type
    /// (NULL is storable anywhere; ints widen into float columns).
    pub fn accepts(self, d: &Datum) -> bool {
        matches!(
            (self, d),
            (_, Datum::Null)
                | (ColumnType::Int, Datum::Int(_))
                | (ColumnType::Float, Datum::Float(_) | Datum::Int(_))
                | (ColumnType::Text, Datum::Text(_))
                | (ColumnType::Bool, Datum::Bool(_))
        )
    }

    /// Type name as used in SQL (`INT`, `FLOAT`, `TEXT`, `BOOL`).
    pub fn name(self) -> &'static str {
        match self {
            ColumnType::Int => "INT",
            ColumnType::Float => "FLOAT",
            ColumnType::Text => "TEXT",
            ColumnType::Bool => "BOOL",
        }
    }

    /// Parses a SQL type name (case-insensitive; accepts common aliases).
    pub fn parse(name: &str) -> Result<ColumnType> {
        match name.to_ascii_uppercase().as_str() {
            "INT" | "INTEGER" | "BIGINT" => Ok(ColumnType::Int),
            "FLOAT" | "REAL" | "DOUBLE" => Ok(ColumnType::Float),
            "TEXT" | "VARCHAR" | "STRING" => Ok(ColumnType::Text),
            "BOOL" | "BOOLEAN" => Ok(ColumnType::Bool),
            other => Err(DataError::Parse(format!("unknown column type: {other}"))),
        }
    }
}

/// One column declaration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Column {
    /// Column name (stored lowercase; SQL identifiers are case-insensitive).
    pub name: String,
    /// Column type.
    pub ctype: ColumnType,
}

impl Column {
    /// Creates a column, lowercasing the name.
    pub fn new(name: impl AsRef<str>, ctype: ColumnType) -> Self {
        Column {
            name: name.as_ref().to_ascii_lowercase(),
            ctype,
        }
    }
}

/// An ordered list of columns.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Schema {
    /// Columns in declaration order.
    pub columns: Vec<Column>,
}

impl Schema {
    /// Creates a schema; fails on duplicate column names.
    pub fn new(columns: Vec<Column>) -> Result<Self> {
        let mut seen = std::collections::HashSet::new();
        for c in &columns {
            if !seen.insert(c.name.clone()) {
                return Err(DataError::Schema(format!("duplicate column: {}", c.name)));
            }
        }
        Ok(Schema { columns })
    }

    /// Index of a column by (case-insensitive) name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        let lower = name.to_ascii_lowercase();
        self.columns.iter().position(|c| c.name == lower)
    }

    /// Column names in order.
    pub fn names(&self) -> Vec<String> {
        self.columns.iter().map(|c| c.name.clone()).collect()
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Validates a row against this schema.
    pub fn check_row(&self, row: &[Datum]) -> Result<()> {
        if row.len() != self.columns.len() {
            return Err(DataError::Schema(format!(
                "arity mismatch: expected {} values, got {}",
                self.columns.len(),
                row.len()
            )));
        }
        for (c, d) in self.columns.iter().zip(row) {
            if !c.ctype.accepts(d) {
                return Err(DataError::TypeError(format!(
                    "column {} ({}) cannot store {d}",
                    c.name,
                    c.ctype.name()
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jobs_schema() -> Schema {
        Schema::new(vec![
            Column::new("id", ColumnType::Int),
            Column::new("title", ColumnType::Text),
            Column::new("salary", ColumnType::Float),
            Column::new("remote", ColumnType::Bool),
        ])
        .unwrap()
    }

    #[test]
    fn duplicate_columns_rejected() {
        let err = Schema::new(vec![
            Column::new("a", ColumnType::Int),
            Column::new("A", ColumnType::Text),
        ])
        .unwrap_err();
        assert!(matches!(err, DataError::Schema(_)));
    }

    #[test]
    fn index_is_case_insensitive() {
        let s = jobs_schema();
        assert_eq!(s.index_of("TITLE"), Some(1));
        assert_eq!(s.index_of("missing"), None);
        assert_eq!(s.arity(), 4);
        assert_eq!(s.names()[0], "id");
    }

    #[test]
    fn accepts_matrix() {
        assert!(ColumnType::Int.accepts(&Datum::Int(1)));
        assert!(!ColumnType::Int.accepts(&Datum::Float(1.0)));
        assert!(ColumnType::Float.accepts(&Datum::Int(1)));
        assert!(ColumnType::Float.accepts(&Datum::Float(1.0)));
        assert!(ColumnType::Text.accepts(&Datum::Text("x".into())));
        assert!(ColumnType::Bool.accepts(&Datum::Bool(false)));
        // NULL everywhere.
        for t in [
            ColumnType::Int,
            ColumnType::Float,
            ColumnType::Text,
            ColumnType::Bool,
        ] {
            assert!(t.accepts(&Datum::Null));
        }
    }

    #[test]
    fn check_row_validates_arity_and_types() {
        let s = jobs_schema();
        s.check_row(&[
            Datum::Int(1),
            Datum::Text("ds".into()),
            Datum::Float(100.0),
            Datum::Bool(true),
        ])
        .unwrap();
        assert!(s.check_row(&[Datum::Int(1)]).is_err());
        assert!(s
            .check_row(&[
                Datum::Text("oops".into()),
                Datum::Text("ds".into()),
                Datum::Float(1.0),
                Datum::Bool(true),
            ])
            .is_err());
    }

    #[test]
    fn type_parse_aliases() {
        assert_eq!(ColumnType::parse("integer").unwrap(), ColumnType::Int);
        assert_eq!(ColumnType::parse("VARCHAR").unwrap(), ColumnType::Text);
        assert_eq!(ColumnType::parse("double").unwrap(), ColumnType::Float);
        assert_eq!(ColumnType::parse("boolean").unwrap(), ColumnType::Bool);
        assert!(ColumnType::parse("blob").is_err());
    }
}
