//! In-memory relational engine executing the SQL subset.
//!
//! Design follows the classic iterator-free, materialize-per-stage layout:
//! scan (index-accelerated when an equality predicate hits a hash index) →
//! join (hash join on column-equality predicates, nested loop otherwise) →
//! filter → aggregate → having → project → distinct → order → limit.
//! Statistics (`row_count`) feed the data planner's cost model.

use std::collections::HashMap;

use parking_lot::RwLock;
use serde_json::Value;

use crate::error::DataError;
use crate::schema::{Column, ColumnType, Schema};
use crate::sql::ast::*;
use crate::sql::parse;
use crate::value::{Datum, DatumKey, Row};
use crate::Result;

/// A table: schema + rows + hash indices.
#[derive(Debug, Default)]
pub struct Table {
    /// Table name (lowercased).
    pub name: String,
    /// Schema.
    pub schema: Schema,
    /// Row storage.
    pub rows: Vec<Row>,
    /// Hash indices: column index → (datum key → row indices).
    indices: HashMap<usize, HashMap<DatumKey, Vec<usize>>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        Table {
            name: name.into(),
            schema,
            rows: Vec::new(),
            indices: HashMap::new(),
        }
    }

    /// Appends a row after schema validation, maintaining indices.
    pub fn insert(&mut self, row: Row) -> Result<()> {
        self.schema.check_row(&row)?;
        let idx = self.rows.len();
        for (col, index) in self.indices.iter_mut() {
            index
                .entry(DatumKey::from(&row[*col]))
                .or_default()
                .push(idx);
        }
        self.rows.push(row);
        Ok(())
    }

    /// Builds a hash index on a column.
    pub fn create_index(&mut self, column: &str) -> Result<()> {
        let col = self
            .schema
            .index_of(column)
            .ok_or_else(|| DataError::UnknownColumn(column.to_string()))?;
        let mut index: HashMap<DatumKey, Vec<usize>> = HashMap::new();
        for (i, row) in self.rows.iter().enumerate() {
            index.entry(DatumKey::from(&row[col])).or_default().push(i);
        }
        self.indices.insert(col, index);
        Ok(())
    }

    /// True if the column has a hash index.
    pub fn has_index(&self, column: &str) -> bool {
        self.schema
            .index_of(column)
            .is_some_and(|c| self.indices.contains_key(&c))
    }

    /// Probes an index; `None` when the column is not indexed.
    fn probe(&self, col: usize, key: &Datum) -> Option<Vec<usize>> {
        self.indices
            .get(&col)
            .map(|index| index.get(&DatumKey::from(key)).cloned().unwrap_or_default())
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }
}

/// A query result: named columns and rows.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ResultSet {
    /// Output column names.
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Row>,
}

impl ResultSet {
    /// Converts to the JSON "table" shape (array of objects) used on streams.
    pub fn to_json(&self) -> Value {
        Value::Array(
            self.rows
                .iter()
                .map(|row| {
                    Value::Object(
                        self.columns
                            .iter()
                            .zip(row)
                            .map(|(c, d)| (c.clone(), d.to_json()))
                            .collect(),
                    )
                })
                .collect(),
        )
    }

    /// Renders an ASCII table (for examples and figure regeneration).
    pub fn render_text(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        let cells: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(ToString::to_string).collect())
            .collect();
        for row in &cells {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:w$}", c, w = widths[i]))
            .collect();
        out.push_str(&header.join(" | "));
        out.push('\n');
        out.push_str(
            &widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("-+-"),
        );
        out.push('\n');
        for row in &cells {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:w$}", c, w = widths[i]))
                .collect();
            out.push_str(&line.join(" | "));
            out.push('\n');
        }
        out
    }

    /// Number of result rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no rows were returned.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Scope: the bindings visible while evaluating expressions against a
/// combined (joined) row.
struct Scope {
    /// `(binding name, schema, offset into the combined row)`.
    bindings: Vec<(String, Schema, usize)>,
    width: usize,
}

impl Scope {
    fn empty() -> Self {
        Scope {
            bindings: Vec::new(),
            width: 0,
        }
    }

    fn push(&mut self, binding: &str, schema: Schema) {
        let offset = self.width;
        self.width += schema.arity();
        self.bindings.push((binding.to_string(), schema, offset));
    }

    /// Resolves a column reference to an absolute index in the combined row.
    fn resolve(&self, table: Option<&str>, name: &str) -> Result<usize> {
        match table {
            Some(t) => {
                let (_, schema, offset) = self
                    .bindings
                    .iter()
                    .find(|(b, _, _)| b == t)
                    .ok_or_else(|| DataError::UnknownTable(t.to_string()))?;
                let col = schema
                    .index_of(name)
                    .ok_or_else(|| DataError::UnknownColumn(format!("{t}.{name}")))?;
                Ok(offset + col)
            }
            None => {
                let mut found = None;
                for (b, schema, offset) in &self.bindings {
                    if let Some(col) = schema.index_of(name) {
                        if found.is_some() {
                            return Err(DataError::UnknownColumn(format!(
                                "ambiguous column: {name} (qualify with a table, e.g. {b}.{name})"
                            )));
                        }
                        found = Some(offset + col);
                    }
                }
                found.ok_or_else(|| DataError::UnknownColumn(name.to_string()))
            }
        }
    }

    /// All output column names (for `SELECT *`).
    fn all_names(&self) -> Vec<String> {
        let qualify = self.bindings.len() > 1;
        let mut names = Vec::with_capacity(self.width);
        for (b, schema, _) in &self.bindings {
            for c in &schema.columns {
                if qualify {
                    names.push(format!("{b}.{}", c.name));
                } else {
                    names.push(c.name.clone());
                }
            }
        }
        names
    }
}

/// A thread-safe collection of tables plus the SQL executor.
#[derive(Default)]
pub struct RelationalDb {
    tables: RwLock<HashMap<String, Table>>,
}

impl RelationalDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a table from a schema (programmatic DDL).
    pub fn create_table(&self, name: &str, schema: Schema) -> Result<()> {
        let name = name.to_ascii_lowercase();
        let mut tables = self.tables.write();
        if tables.contains_key(&name) {
            return Err(DataError::Schema(format!("table already exists: {name}")));
        }
        tables.insert(name.clone(), Table::new(name, schema));
        Ok(())
    }

    /// Inserts a row programmatically.
    pub fn insert_row(&self, table: &str, row: Row) -> Result<()> {
        let mut tables = self.tables.write();
        let t = tables
            .get_mut(&table.to_ascii_lowercase())
            .ok_or_else(|| DataError::UnknownTable(table.to_string()))?;
        t.insert(row)
    }

    /// Builds a hash index on `table.column`.
    pub fn create_index(&self, table: &str, column: &str) -> Result<()> {
        let mut tables = self.tables.write();
        let t = tables
            .get_mut(&table.to_ascii_lowercase())
            .ok_or_else(|| DataError::UnknownTable(table.to_string()))?;
        t.create_index(column)
    }

    /// Row count of a table (0 for unknown tables).
    pub fn row_count(&self, table: &str) -> usize {
        self.tables
            .read()
            .get(&table.to_ascii_lowercase())
            .map(Table::row_count)
            .unwrap_or(0)
    }

    /// Table names, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Schema of a table.
    pub fn schema_of(&self, table: &str) -> Result<Schema> {
        self.tables
            .read()
            .get(&table.to_ascii_lowercase())
            .map(|t| t.schema.clone())
            .ok_or_else(|| DataError::UnknownTable(table.to_string()))
    }

    /// Parses and executes one SQL statement. DDL/DML return empty results.
    pub fn execute(&self, sql: &str) -> Result<ResultSet> {
        match parse(sql)? {
            Stmt::CreateTable { name, columns } => {
                let schema = Schema::new(
                    columns
                        .into_iter()
                        .map(|(n, t)| Column::new(n, t))
                        .collect(),
                )?;
                self.create_table(&name, schema)?;
                Ok(ResultSet::default())
            }
            Stmt::Insert(insert) => {
                self.run_insert(insert)?;
                Ok(ResultSet::default())
            }
            Stmt::Select(select) => self.run_select(&select),
        }
    }

    fn run_insert(&self, insert: InsertStmt) -> Result<()> {
        let scope = Scope::empty();
        let mut tables = self.tables.write();
        let t = tables
            .get_mut(&insert.table)
            .ok_or_else(|| DataError::UnknownTable(insert.table.clone()))?;
        // Map provided columns to schema positions.
        let positions: Vec<usize> = match &insert.columns {
            Some(cols) => cols
                .iter()
                .map(|c| {
                    t.schema
                        .index_of(c)
                        .ok_or_else(|| DataError::UnknownColumn(c.clone()))
                })
                .collect::<Result<_>>()?,
            None => (0..t.schema.arity()).collect(),
        };
        for value_row in insert.rows {
            if value_row.len() != positions.len() {
                return Err(DataError::Schema(format!(
                    "INSERT arity mismatch: expected {} values, got {}",
                    positions.len(),
                    value_row.len()
                )));
            }
            let mut row: Row = vec![Datum::Null; t.schema.arity()];
            for (pos, expr) in positions.iter().zip(value_row) {
                row[*pos] = eval(&expr, &[], &scope)?;
            }
            // Coerce int literals into float columns.
            for (i, c) in t.schema.columns.iter().enumerate() {
                if c.ctype == ColumnType::Float {
                    if let Datum::Int(v) = row[i] {
                        row[i] = Datum::Float(v as f64);
                    }
                }
            }
            t.insert(row)?;
        }
        Ok(())
    }

    fn run_select(&self, select: &SelectStmt) -> Result<ResultSet> {
        let tables = self.tables.read();

        // Table-less SELECT: evaluate items against a single empty row
        // (dropped again if a WHERE clause rejects it, e.g. `SELECT 1
        // WHERE 1 = 2`).
        let Some(from) = &select.from else {
            let scope = Scope::empty();
            if let Some(w) = &select.where_clause {
                if !truthy(&eval(w, &[], &scope)?) {
                    let (columns, _) = projection(select, &scope)?;
                    return Ok(ResultSet {
                        columns,
                        rows: Vec::new(),
                    });
                }
            }
            let (columns, exprs) = projection(select, &scope)?;
            let row: Row = exprs
                .iter()
                .map(|e| eval(e, &[], &scope))
                .collect::<Result<_>>()?;
            return Ok(ResultSet {
                columns,
                rows: vec![row],
            });
        };

        // FROM: base scan (index-accelerated when possible).
        let base = tables
            .get(&from.table)
            .ok_or_else(|| DataError::UnknownTable(from.table.clone()))?;
        let mut scope = Scope::empty();
        scope.push(from.binding(), base.schema.clone());

        // Unqualified equality conjuncts may only drive an index probe when
        // there are no joins: with joins, an unqualified name could be
        // ambiguous, and the probe must not pre-empt the ambiguity error.
        let allow_unqualified = select.joins.is_empty();
        let mut rows: Vec<Row> = scan_base(
            base,
            from.binding(),
            select.where_clause.as_ref(),
            allow_unqualified,
        )?;

        // JOINs.
        for join in &select.joins {
            let right = tables
                .get(&join.table.table)
                .ok_or_else(|| DataError::UnknownTable(join.table.table.clone()))?;
            let left_scope_width = scope.width;
            scope.push(join.table.binding(), right.schema.clone());
            rows = execute_join(rows, left_scope_width, right, join, &scope)?;
        }

        // WHERE.
        if let Some(w) = &select.where_clause {
            let mut kept = Vec::new();
            for row in rows {
                if truthy(&eval(w, &row, &scope)?) {
                    kept.push(row);
                }
            }
            rows = kept;
        }

        // Aggregate or plain projection.
        let is_aggregate = !select.group_by.is_empty()
            || select.items.iter().any(|i| match i {
                SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
                SelectItem::Wildcard => false,
            })
            || select.having.as_ref().is_some_and(Expr::contains_aggregate);

        let (columns, projected) = if is_aggregate {
            aggregate_path(select, rows, &scope)?
        } else {
            // Plain queries sort on the raw (pre-projection) rows so ORDER BY
            // may reference any column in scope, projected or not.
            let rows = sort_plain(select, rows, &scope)?;
            plain_path(select, rows, &scope)?
        };

        let mut result = ResultSet {
            columns,
            rows: projected,
        };

        // DISTINCT (stable: keeps the first occurrence in sorted order).
        if select.distinct {
            let mut seen = std::collections::HashSet::new();
            result.rows.retain(|row| {
                let key: Vec<DatumKey> = row.iter().map(DatumKey::from).collect();
                seen.insert(key)
            });
        }

        // Aggregate queries sort on the projected output (aliases resolve to
        // output columns).
        if is_aggregate && !select.order_by.is_empty() {
            sort_result(&mut result, select, &scope)?;
        }

        // LIMIT.
        if let Some(limit) = select.limit {
            result.rows.truncate(limit as usize);
        }
        Ok(result)
    }
}

/// Computes output columns and expressions for non-wildcard handling.
fn projection(select: &SelectStmt, scope: &Scope) -> Result<(Vec<String>, Vec<Expr>)> {
    let mut columns = Vec::new();
    let mut exprs = Vec::new();
    for item in &select.items {
        match item {
            SelectItem::Wildcard => {
                for (i, name) in scope.all_names().iter().enumerate() {
                    columns.push(name.clone());
                    // Wildcard columns address the combined row directly;
                    // encode as an absolute-index pseudo column.
                    exprs.push(Expr::Column {
                        table: Some("#abs".into()),
                        name: i.to_string(),
                    });
                }
            }
            SelectItem::Expr { expr, alias } => {
                columns.push(alias.clone().unwrap_or_else(|| name_of(expr)));
                exprs.push(expr.clone());
            }
        }
    }
    Ok((columns, exprs))
}

/// Derives a display name for an unaliased expression.
fn name_of(expr: &Expr) -> String {
    match expr {
        Expr::Column { table, name } => match table {
            Some(t) => format!("{t}.{name}"),
            None => name.clone(),
        },
        Expr::FnCall { name, args, star } => {
            if *star {
                format!("{}(*)", name.to_ascii_lowercase())
            } else {
                format!(
                    "{}({})",
                    name.to_ascii_lowercase(),
                    args.iter().map(name_of).collect::<Vec<_>>().join(", ")
                )
            }
        }
        Expr::Literal(d) => d.to_string(),
        _ => "expr".to_string(),
    }
}

/// Base-table scan, probing a hash index when the WHERE clause contains an
/// `indexed_col = literal` conjunct for this binding.
fn scan_base(
    table: &Table,
    binding: &str,
    where_clause: Option<&Expr>,
    allow_unqualified: bool,
) -> Result<Vec<Row>> {
    if let Some(w) = where_clause {
        for (col_name, literal) in eq_literal_conjuncts(w, binding, allow_unqualified) {
            if let Some(col) = table.schema.index_of(&col_name) {
                if let Some(row_ids) = table.probe(col, &literal) {
                    return Ok(row_ids.iter().map(|&i| table.rows[i].clone()).collect());
                }
            }
        }
    }
    Ok(table.rows.clone())
}

/// Extracts `(column, literal)` pairs from top-level AND-ed equality
/// conjuncts that reference the given binding (or are unqualified).
fn eq_literal_conjuncts(
    expr: &Expr,
    binding: &str,
    allow_unqualified: bool,
) -> Vec<(String, Datum)> {
    let mut out = Vec::new();
    collect_eq(expr, binding, allow_unqualified, &mut out);
    out
}

fn collect_eq(expr: &Expr, binding: &str, allow_unqualified: bool, out: &mut Vec<(String, Datum)>) {
    match expr {
        Expr::Binary {
            left,
            op: BinOp::And,
            right,
        } => {
            collect_eq(left, binding, allow_unqualified, out);
            collect_eq(right, binding, allow_unqualified, out);
        }
        Expr::Binary {
            left,
            op: BinOp::Eq,
            right,
        } => {
            let pairs: [(&Expr, &Expr); 2] = [(left, right), (right, left)];
            for (a, b) in pairs {
                if let (Expr::Column { table, name }, Expr::Literal(d)) = (a, b) {
                    let matches_binding = match table.as_deref() {
                        Some(t) => t == binding,
                        None => allow_unqualified,
                    };
                    if matches_binding {
                        out.push((name.clone(), d.clone()));
                        break;
                    }
                }
            }
        }
        _ => {}
    }
}

/// Executes one join step: hash join on `left_col = right_col` predicates,
/// nested loop otherwise.
fn execute_join(
    left_rows: Vec<Row>,
    left_width: usize,
    right: &Table,
    join: &Join,
    scope: &Scope,
) -> Result<Vec<Row>> {
    // Try to recognize an equi-join predicate.
    if let Expr::Binary {
        left: a,
        op: BinOp::Eq,
        right: b,
    } = &join.on
    {
        if let (
            Expr::Column {
                table: ta,
                name: na,
            },
            Expr::Column {
                table: tb,
                name: nb,
            },
        ) = (a.as_ref(), b.as_ref())
        {
            let ra = scope.resolve(ta.as_deref(), na)?;
            let rb = scope.resolve(tb.as_deref(), nb)?;
            let (left_idx, right_idx) = if ra < left_width && rb >= left_width {
                (ra, rb - left_width)
            } else if rb < left_width && ra >= left_width {
                (rb, ra - left_width)
            } else {
                return nested_loop_join(left_rows, right, join, scope);
            };
            // Hash join: build on the right side.
            let mut built: HashMap<DatumKey, Vec<&Row>> = HashMap::new();
            for row in &right.rows {
                built
                    .entry(DatumKey::from(&row[right_idx]))
                    .or_default()
                    .push(row);
            }
            let mut out = Vec::new();
            for lrow in left_rows {
                if lrow[left_idx].is_null() {
                    continue; // NULL never joins
                }
                if let Some(matches) = built.get(&DatumKey::from(&lrow[left_idx])) {
                    for rrow in matches {
                        let mut combined = lrow.clone();
                        combined.extend((*rrow).clone());
                        out.push(combined);
                    }
                }
            }
            return Ok(out);
        }
    }
    nested_loop_join(left_rows, right, join, scope)
}

fn nested_loop_join(
    left_rows: Vec<Row>,
    right: &Table,
    join: &Join,
    scope: &Scope,
) -> Result<Vec<Row>> {
    let mut out = Vec::new();
    for lrow in left_rows {
        for rrow in &right.rows {
            let mut combined = lrow.clone();
            combined.extend(rrow.clone());
            if truthy(&eval(&join.on, &combined, scope)?) {
                out.push(combined);
            }
        }
    }
    Ok(out)
}

/// Sorts raw rows for a non-aggregate query. ORDER BY keys may reference any
/// in-scope column or a projection alias (resolved by substituting the
/// aliased expression).
fn sort_plain(select: &SelectStmt, rows: Vec<Row>, scope: &Scope) -> Result<Vec<Row>> {
    if select.order_by.is_empty() {
        return Ok(rows);
    }
    // Resolve alias references up front.
    let keys: Vec<(Expr, bool)> = select
        .order_by
        .iter()
        .map(|ok| {
            let expr = match &ok.expr {
                Expr::Column { table: None, name } => {
                    let aliased = select.items.iter().find_map(|item| match item {
                        SelectItem::Expr {
                            expr,
                            alias: Some(a),
                        } if a == name => Some(expr.clone()),
                        _ => None,
                    });
                    aliased.unwrap_or_else(|| ok.expr.clone())
                }
                other => other.clone(),
            };
            (expr, ok.asc)
        })
        .collect();
    let mut decorated: Vec<(Vec<Datum>, Row)> = Vec::with_capacity(rows.len());
    for row in rows {
        let kvals: Vec<Datum> = keys
            .iter()
            .map(|(e, _)| eval(e, &row, scope))
            .collect::<Result<_>>()?;
        decorated.push((kvals, row));
    }
    decorated.sort_by(|(ka, _), (kb, _)| {
        for (i, (_, asc)) in keys.iter().enumerate() {
            let ord = ka[i].sql_cmp(&kb[i]);
            let ord = if *asc { ord } else { ord.reverse() };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(decorated.into_iter().map(|(_, r)| r).collect())
}

fn plain_path(
    select: &SelectStmt,
    rows: Vec<Row>,
    scope: &Scope,
) -> Result<(Vec<String>, Vec<Row>)> {
    let (columns, exprs) = projection(select, scope)?;
    let mut out = Vec::with_capacity(rows.len());
    for row in rows {
        let projected: Row = exprs
            .iter()
            .map(|e| eval(e, &row, scope))
            .collect::<Result<_>>()?;
        out.push(projected);
    }
    Ok((columns, out))
}

fn aggregate_path(
    select: &SelectStmt,
    rows: Vec<Row>,
    scope: &Scope,
) -> Result<(Vec<String>, Vec<Row>)> {
    // Group rows.
    let mut groups: Vec<(Vec<DatumKey>, Vec<Row>)> = Vec::new();
    let mut index: HashMap<Vec<DatumKey>, usize> = HashMap::new();
    for row in rows {
        let key: Vec<DatumKey> = select
            .group_by
            .iter()
            .map(|e| eval(e, &row, scope).map(|d| DatumKey::from(&d)))
            .collect::<Result<_>>()?;
        match index.get(&key) {
            Some(&i) => groups[i].1.push(row),
            None => {
                index.insert(key.clone(), groups.len());
                groups.push((key, vec![row]));
            }
        }
    }
    // With no GROUP BY, aggregates run over all rows as one group (even if
    // empty, per SQL semantics for COUNT).
    if select.group_by.is_empty() && groups.is_empty() {
        groups.push((Vec::new(), Vec::new()));
    }

    let (columns, exprs) = projection(select, scope)?;
    let mut out = Vec::with_capacity(groups.len());
    for (_, group_rows) in &groups {
        if let Some(h) = &select.having {
            if !truthy(&eval_agg(h, group_rows, scope)?) {
                continue;
            }
        }
        let projected: Row = exprs
            .iter()
            .map(|e| eval_agg(e, group_rows, scope))
            .collect::<Result<_>>()?;
        out.push(projected);
    }
    Ok((columns, out))
}

fn sort_result(result: &mut ResultSet, select: &SelectStmt, scope: &Scope) -> Result<()> {
    // Each order key resolves either to a projected output column (by alias
    // or name) or — for plain selects — to any expression over the scope.
    enum Key {
        Output(usize),
        Expr(Expr),
    }
    let mut keys = Vec::new();
    for ok in &select.order_by {
        let as_output = match &ok.expr {
            Expr::Column { table: None, name } => result.columns.iter().position(|c| c == name),
            _ => {
                let n = name_of(&ok.expr);
                result.columns.iter().position(|c| *c == n)
            }
        };
        match as_output {
            Some(i) => keys.push((Key::Output(i), ok.asc)),
            None => keys.push((Key::Expr(ok.expr.clone()), ok.asc)),
        }
    }
    // Pre-compute sort keys (expressions need the original rows, which we no
    // longer have post-projection — only allow output-column sorting for
    // aggregate queries).
    let mut decorated: Vec<(Vec<Datum>, Row)> = Vec::with_capacity(result.rows.len());
    for row in result.rows.drain(..) {
        let mut kvals = Vec::with_capacity(keys.len());
        for (k, _) in &keys {
            match k {
                Key::Output(i) => kvals.push(row[*i].clone()),
                Key::Expr(e) => {
                    // Fall back to evaluating over the projected row treated
                    // as the scope width — works only when the expression is
                    // a literal; otherwise report a clear error.
                    match e {
                        Expr::Literal(d) => kvals.push(d.clone()),
                        _ => {
                            return Err(DataError::Eval(format!(
                                "ORDER BY expression must reference an output column: {}",
                                name_of(e)
                            )))
                        }
                    }
                }
            }
        }
        decorated.push((kvals, row));
    }
    let _ = scope;
    decorated.sort_by(|(ka, _), (kb, _)| {
        for (i, (_, asc)) in keys.iter().enumerate() {
            let ord = ka[i].sql_cmp(&kb[i]);
            let ord = if *asc { ord } else { ord.reverse() };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    result.rows = decorated.into_iter().map(|(_, r)| r).collect();
    Ok(())
}

/// SQL truthiness: only TRUE passes filters.
fn truthy(d: &Datum) -> bool {
    matches!(d, Datum::Bool(true))
}

/// Evaluates an expression against a combined row.
fn eval(expr: &Expr, row: &[Datum], scope: &Scope) -> Result<Datum> {
    match expr {
        Expr::Literal(d) => Ok(d.clone()),
        Expr::Column { table, name } => {
            // `#abs` pseudo-qualifier: absolute index into the combined row
            // (used internally for wildcard projection).
            if table.as_deref() == Some("#abs") {
                let i: usize = name
                    .parse()
                    .map_err(|_| DataError::Eval("bad absolute column".into()))?;
                return Ok(row.get(i).cloned().unwrap_or(Datum::Null));
            }
            let i = scope.resolve(table.as_deref(), name)?;
            Ok(row.get(i).cloned().unwrap_or(Datum::Null))
        }
        Expr::Unary { op, expr } => {
            let v = eval(expr, row, scope)?;
            match op {
                UnOp::Not => match v {
                    Datum::Null => Ok(Datum::Null),
                    Datum::Bool(b) => Ok(Datum::Bool(!b)),
                    other => Err(DataError::TypeError(format!("NOT applied to {other}"))),
                },
                UnOp::Neg => match v {
                    Datum::Null => Ok(Datum::Null),
                    Datum::Int(i) => Ok(Datum::Int(-i)),
                    Datum::Float(f) => Ok(Datum::Float(-f)),
                    other => Err(DataError::TypeError(format!("negation applied to {other}"))),
                },
            }
        }
        Expr::Binary { left, op, right } => {
            // Short-circuiting Kleene logic for AND/OR.
            if matches!(op, BinOp::And | BinOp::Or) {
                let l = eval(left, row, scope)?;
                return eval_logic(*op, l, || eval(right, row, scope));
            }
            let l = eval(left, row, scope)?;
            let r = eval(right, row, scope)?;
            eval_binop(*op, l, r)
        }
        Expr::FnCall { name, args, star } => {
            if AGGREGATES.contains(&name.as_str()) {
                return Err(DataError::Eval(format!(
                    "aggregate {name} used outside an aggregate query"
                )));
            }
            let _ = star;
            let vals: Vec<Datum> = args
                .iter()
                .map(|a| eval(a, row, scope))
                .collect::<Result<_>>()?;
            eval_scalar_fn(name, &vals)
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let v = eval(expr, row, scope)?;
            if v.is_null() {
                return Ok(Datum::Null);
            }
            let mut saw_null = false;
            for item in list {
                let iv = eval(item, row, scope)?;
                match v.sql_eq(&iv) {
                    Some(true) => return Ok(Datum::Bool(!negated)),
                    Some(false) => {}
                    None => saw_null = true,
                }
            }
            if saw_null {
                Ok(Datum::Null)
            } else {
                Ok(Datum::Bool(*negated))
            }
        }
        Expr::Like {
            expr,
            pattern,
            negated,
        } => {
            let v = eval(expr, row, scope)?;
            let p = eval(pattern, row, scope)?;
            match (v, p) {
                (Datum::Null, _) | (_, Datum::Null) => Ok(Datum::Null),
                (Datum::Text(s), Datum::Text(pat)) => {
                    let m = like_match(&s.to_lowercase(), &pat.to_lowercase());
                    Ok(Datum::Bool(m != *negated))
                }
                (a, b) => Err(DataError::TypeError(format!("LIKE applied to {a}, {b}"))),
            }
        }
        Expr::IsNull { expr, negated } => {
            let v = eval(expr, row, scope)?;
            Ok(Datum::Bool(v.is_null() != *negated))
        }
    }
}

fn eval_logic(op: BinOp, left: Datum, right: impl FnOnce() -> Result<Datum>) -> Result<Datum> {
    let lb = match &left {
        Datum::Null => None,
        Datum::Bool(b) => Some(*b),
        other => {
            return Err(DataError::TypeError(format!(
                "logical operator applied to {other}"
            )))
        }
    };
    match (op, lb) {
        (BinOp::And, Some(false)) => Ok(Datum::Bool(false)),
        (BinOp::Or, Some(true)) => Ok(Datum::Bool(true)),
        _ => {
            let r = right()?;
            let rb = match &r {
                Datum::Null => None,
                Datum::Bool(b) => Some(*b),
                other => {
                    return Err(DataError::TypeError(format!(
                        "logical operator applied to {other}"
                    )))
                }
            };
            let result = match op {
                BinOp::And => match (lb, rb) {
                    (Some(false), _) | (_, Some(false)) => Some(false),
                    (Some(true), Some(true)) => Some(true),
                    _ => None,
                },
                BinOp::Or => match (lb, rb) {
                    (Some(true), _) | (_, Some(true)) => Some(true),
                    (Some(false), Some(false)) => Some(false),
                    _ => None,
                },
                _ => unreachable!("eval_logic only handles AND/OR"),
            };
            Ok(result.map(Datum::Bool).unwrap_or(Datum::Null))
        }
    }
}

fn eval_binop(op: BinOp, l: Datum, r: Datum) -> Result<Datum> {
    match op {
        BinOp::Eq | BinOp::Ne => match l.sql_eq(&r) {
            None => Ok(Datum::Null),
            Some(eq) => Ok(Datum::Bool(if op == BinOp::Eq { eq } else { !eq })),
        },
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            if l.is_null() || r.is_null() {
                return Ok(Datum::Null);
            }
            // Comparable types only.
            let cmp_ok = matches!(
                (&l, &r),
                (Datum::Text(_), Datum::Text(_))
                    | (
                        Datum::Int(_) | Datum::Float(_),
                        Datum::Int(_) | Datum::Float(_)
                    )
            );
            if !cmp_ok {
                return Err(DataError::TypeError(format!("cannot compare {l} with {r}")));
            }
            let ord = l.sql_cmp(&r);
            Ok(Datum::Bool(match op {
                BinOp::Lt => ord == std::cmp::Ordering::Less,
                BinOp::Le => ord != std::cmp::Ordering::Greater,
                BinOp::Gt => ord == std::cmp::Ordering::Greater,
                BinOp::Ge => ord != std::cmp::Ordering::Less,
                _ => unreachable!(),
            }))
        }
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
            if l.is_null() || r.is_null() {
                return Ok(Datum::Null);
            }
            match (&l, &r) {
                (Datum::Int(a), Datum::Int(b)) => match op {
                    BinOp::Add => Ok(Datum::Int(a.wrapping_add(*b))),
                    BinOp::Sub => Ok(Datum::Int(a.wrapping_sub(*b))),
                    BinOp::Mul => Ok(Datum::Int(a.wrapping_mul(*b))),
                    BinOp::Div => {
                        if *b == 0 {
                            Err(DataError::Eval("division by zero".into()))
                        } else {
                            Ok(Datum::Int(a / b))
                        }
                    }
                    _ => unreachable!(),
                },
                _ => {
                    let (a, b) = match (l.as_f64(), r.as_f64()) {
                        (Some(a), Some(b)) => (a, b),
                        _ => {
                            return Err(DataError::TypeError(format!("arithmetic on {l} and {r}")))
                        }
                    };
                    match op {
                        BinOp::Add => Ok(Datum::Float(a + b)),
                        BinOp::Sub => Ok(Datum::Float(a - b)),
                        BinOp::Mul => Ok(Datum::Float(a * b)),
                        BinOp::Div => {
                            if b == 0.0 {
                                Err(DataError::Eval("division by zero".into()))
                            } else {
                                Ok(Datum::Float(a / b))
                            }
                        }
                        _ => unreachable!(),
                    }
                }
            }
        }
        BinOp::And | BinOp::Or => unreachable!("handled by eval_logic"),
    }
}

fn eval_scalar_fn(name: &str, args: &[Datum]) -> Result<Datum> {
    let arg1 = || -> Result<&Datum> {
        args.first()
            .ok_or_else(|| DataError::Eval(format!("{name} requires an argument")))
    };
    match name {
        "LOWER" => match arg1()? {
            Datum::Null => Ok(Datum::Null),
            Datum::Text(s) => Ok(Datum::Text(s.to_lowercase())),
            other => Err(DataError::TypeError(format!("LOWER applied to {other}"))),
        },
        "UPPER" => match arg1()? {
            Datum::Null => Ok(Datum::Null),
            Datum::Text(s) => Ok(Datum::Text(s.to_uppercase())),
            other => Err(DataError::TypeError(format!("UPPER applied to {other}"))),
        },
        "LENGTH" => match arg1()? {
            Datum::Null => Ok(Datum::Null),
            Datum::Text(s) => Ok(Datum::Int(s.chars().count() as i64)),
            other => Err(DataError::TypeError(format!("LENGTH applied to {other}"))),
        },
        "ABS" => match arg1()? {
            Datum::Null => Ok(Datum::Null),
            Datum::Int(i) => Ok(Datum::Int(i.abs())),
            Datum::Float(f) => Ok(Datum::Float(f.abs())),
            other => Err(DataError::TypeError(format!("ABS applied to {other}"))),
        },
        "ROUND" => match arg1()? {
            Datum::Null => Ok(Datum::Null),
            Datum::Int(i) => Ok(Datum::Int(*i)),
            Datum::Float(f) => Ok(Datum::Float(f.round())),
            other => Err(DataError::TypeError(format!("ROUND applied to {other}"))),
        },
        "CONCAT" => {
            let mut s = String::new();
            for a in args {
                if !a.is_null() {
                    s.push_str(&a.to_string());
                }
            }
            Ok(Datum::Text(s))
        }
        other => Err(DataError::Eval(format!("unknown function: {other}"))),
    }
}

/// Evaluates an expression in aggregate context: aggregate calls compute
/// over the group; other parts evaluate against the group's first row.
fn eval_agg(expr: &Expr, group: &[Row], scope: &Scope) -> Result<Datum> {
    match expr {
        Expr::FnCall { name, args, star } if AGGREGATES.contains(&name.as_str()) => {
            compute_aggregate(name, args, *star, group, scope)
        }
        Expr::Literal(d) => Ok(d.clone()),
        Expr::Column { .. } => match group.first() {
            Some(row) => eval(expr, row, scope),
            None => Ok(Datum::Null),
        },
        Expr::Unary { op, expr } => {
            let inner = eval_agg(expr, group, scope)?;
            eval(
                &Expr::Unary {
                    op: *op,
                    expr: Box::new(Expr::Literal(inner)),
                },
                &[],
                &Scope::empty(),
            )
        }
        Expr::Binary { left, op, right } => {
            let l = eval_agg(left, group, scope)?;
            let r = eval_agg(right, group, scope)?;
            if matches!(op, BinOp::And | BinOp::Or) {
                eval_logic(*op, l, || Ok(r))
            } else {
                eval_binop(*op, l, r)
            }
        }
        Expr::FnCall { name, args, .. } => {
            let vals: Vec<Datum> = args
                .iter()
                .map(|a| eval_agg(a, group, scope))
                .collect::<Result<_>>()?;
            eval_scalar_fn(name, &vals)
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let inner = eval_agg(expr, group, scope)?;
            let lits: Vec<Expr> = list
                .iter()
                .map(|e| eval_agg(e, group, scope).map(Expr::Literal))
                .collect::<Result<_>>()?;
            eval(
                &Expr::InList {
                    expr: Box::new(Expr::Literal(inner)),
                    list: lits,
                    negated: *negated,
                },
                &[],
                &Scope::empty(),
            )
        }
        Expr::Like {
            expr,
            pattern,
            negated,
        } => {
            let v = eval_agg(expr, group, scope)?;
            let p = eval_agg(pattern, group, scope)?;
            eval(
                &Expr::Like {
                    expr: Box::new(Expr::Literal(v)),
                    pattern: Box::new(Expr::Literal(p)),
                    negated: *negated,
                },
                &[],
                &Scope::empty(),
            )
        }
        Expr::IsNull { expr, negated } => {
            let v = eval_agg(expr, group, scope)?;
            Ok(Datum::Bool(v.is_null() != *negated))
        }
    }
}

fn compute_aggregate(
    name: &str,
    args: &[Expr],
    star: bool,
    group: &[Row],
    scope: &Scope,
) -> Result<Datum> {
    if name == "COUNT" && star {
        return Ok(Datum::Int(group.len() as i64));
    }
    let arg = args
        .first()
        .ok_or_else(|| DataError::Eval(format!("{name} requires an argument")))?;
    let mut values = Vec::with_capacity(group.len());
    for row in group {
        let v = eval(arg, row, scope)?;
        if !v.is_null() {
            values.push(v);
        }
    }
    match name {
        "COUNT" => Ok(Datum::Int(values.len() as i64)),
        "SUM" | "AVG" => {
            if values.is_empty() {
                return Ok(Datum::Null);
            }
            let mut sum = 0.0;
            let mut all_int = true;
            for v in &values {
                match v {
                    Datum::Int(i) => sum += *i as f64,
                    Datum::Float(f) => {
                        sum += f;
                        all_int = false;
                    }
                    other => {
                        return Err(DataError::TypeError(format!("{name} applied to {other}")))
                    }
                }
            }
            if name == "AVG" {
                Ok(Datum::Float(sum / values.len() as f64))
            } else if all_int {
                Ok(Datum::Int(sum as i64))
            } else {
                Ok(Datum::Float(sum))
            }
        }
        "MIN" | "MAX" => {
            if values.is_empty() {
                return Ok(Datum::Null);
            }
            let mut best = values[0].clone();
            for v in &values[1..] {
                let ord = v.sql_cmp(&best);
                let better = if name == "MIN" {
                    ord == std::cmp::Ordering::Less
                } else {
                    ord == std::cmp::Ordering::Greater
                };
                if better {
                    best = v.clone();
                }
            }
            Ok(best)
        }
        other => Err(DataError::Eval(format!("unknown aggregate: {other}"))),
    }
}

/// SQL LIKE matcher: `%` matches any run, `_` matches one character.
fn like_match(s: &str, pattern: &str) -> bool {
    fn inner(s: &[char], p: &[char]) -> bool {
        match p.first() {
            None => s.is_empty(),
            Some('%') => {
                // Try matching zero or more characters.
                (0..=s.len()).any(|skip| inner(&s[skip..], &p[1..]))
            }
            Some('_') => !s.is_empty() && inner(&s[1..], &p[1..]),
            Some(&c) => s.first() == Some(&c) && inner(&s[1..], &p[1..]),
        }
    }
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    inner(&s, &p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> RelationalDb {
        let db = RelationalDb::new();
        db.execute(
            "CREATE TABLE jobs (id INT, title TEXT, city TEXT, salary FLOAT, company_id INT)",
        )
        .unwrap();
        db.execute("CREATE TABLE companies (id INT, name TEXT, size INT)")
            .unwrap();
        db.execute(
            "INSERT INTO jobs VALUES \
             (1, 'data scientist', 'san francisco', 180000.0, 1), \
             (2, 'data scientist', 'oakland', 165000.0, 2), \
             (3, 'ml engineer', 'san jose', 190000.0, 1), \
             (4, 'data analyst', 'san francisco', 120000.0, 3), \
             (5, 'recruiter', 'new york', 90000.0, 2)",
        )
        .unwrap();
        db.execute(
            "INSERT INTO companies VALUES (1, 'google', 100000), (2, 'startup', 50), (3, 'bank', 20000)",
        )
        .unwrap();
        db
    }

    #[test]
    fn select_star() {
        let r = db().execute("SELECT * FROM jobs").unwrap();
        assert_eq!(r.columns, ["id", "title", "city", "salary", "company_id"]);
        assert_eq!(r.len(), 5);
    }

    #[test]
    fn where_filters() {
        let r = db()
            .execute("SELECT title FROM jobs WHERE salary >= 150000 AND city <> 'oakland'")
            .unwrap();
        let titles: Vec<String> = r.rows.iter().map(|r| r[0].to_string()).collect();
        assert_eq!(titles, ["data scientist", "ml engineer"]);
    }

    #[test]
    fn in_list_predicate() {
        let r = db()
            .execute("SELECT id FROM jobs WHERE city IN ('san francisco', 'oakland') ORDER BY id")
            .unwrap();
        let ids: Vec<String> = r.rows.iter().map(|r| r[0].to_string()).collect();
        assert_eq!(ids, ["1", "2", "4"]);
    }

    #[test]
    fn like_predicate() {
        let r = db()
            .execute("SELECT id FROM jobs WHERE title LIKE 'data%' ORDER BY id")
            .unwrap();
        assert_eq!(r.len(), 3);
        let r2 = db()
            .execute("SELECT id FROM jobs WHERE title LIKE '%engineer'")
            .unwrap();
        assert_eq!(r2.len(), 1);
        let r3 = db()
            .execute("SELECT id FROM jobs WHERE title LIKE 'd_ta scientist'")
            .unwrap();
        assert_eq!(r3.len(), 2);
    }

    #[test]
    fn join_hash_path() {
        let r = db()
            .execute(
                "SELECT jobs.title, companies.name FROM jobs \
                 JOIN companies ON jobs.company_id = companies.id \
                 WHERE companies.size > 10000 ORDER BY jobs.title",
            )
            .unwrap();
        assert_eq!(r.len(), 3);
        assert_eq!(r.rows[0][1], Datum::Text("bank".into()));
    }

    #[test]
    fn join_with_aliases() {
        let r = db()
            .execute(
                "SELECT j.id FROM jobs j JOIN companies c ON j.company_id = c.id \
                 WHERE c.name = 'startup' ORDER BY j.id",
            )
            .unwrap();
        let ids: Vec<String> = r.rows.iter().map(|r| r[0].to_string()).collect();
        assert_eq!(ids, ["2", "5"]);
    }

    #[test]
    fn nested_loop_join_on_inequality() {
        let r = db()
            .execute("SELECT j.id FROM jobs j JOIN companies c ON j.company_id < c.id")
            .unwrap();
        // Each job joins companies with id greater than its company_id.
        assert!(!r.is_empty());
    }

    #[test]
    fn group_by_with_having_and_order() {
        let r = db()
            .execute(
                "SELECT title, COUNT(*) AS n, AVG(salary) AS avg_salary FROM jobs \
                 GROUP BY title HAVING COUNT(*) >= 1 ORDER BY n DESC, title ASC",
            )
            .unwrap();
        assert_eq!(r.columns, ["title", "n", "avg_salary"]);
        assert_eq!(r.rows[0][0], Datum::Text("data scientist".into()));
        assert_eq!(r.rows[0][1], Datum::Int(2));
        assert_eq!(r.rows[0][2], Datum::Float(172500.0));
    }

    #[test]
    fn aggregates_without_group_by() {
        let r = db()
            .execute("SELECT COUNT(*), SUM(salary), MIN(salary), MAX(salary) FROM jobs")
            .unwrap();
        assert_eq!(r.rows[0][0], Datum::Int(5));
        assert_eq!(r.rows[0][1], Datum::Float(745000.0));
        assert_eq!(r.rows[0][2], Datum::Float(90000.0));
        assert_eq!(r.rows[0][3], Datum::Float(190000.0));
    }

    #[test]
    fn count_on_empty_table_is_zero() {
        let db = RelationalDb::new();
        db.execute("CREATE TABLE t (x INT)").unwrap();
        let r = db.execute("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(r.rows[0][0], Datum::Int(0));
        // SUM over empty is NULL.
        let r2 = db.execute("SELECT SUM(x) FROM t").unwrap();
        assert_eq!(r2.rows[0][0], Datum::Null);
    }

    #[test]
    fn distinct_dedupes() {
        let r = db().execute("SELECT DISTINCT title FROM jobs").unwrap();
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn limit_truncates() {
        let r = db()
            .execute("SELECT id FROM jobs ORDER BY id LIMIT 2")
            .unwrap();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn order_desc() {
        let r = db()
            .execute("SELECT id, salary FROM jobs ORDER BY salary DESC LIMIT 1")
            .unwrap();
        assert_eq!(r.rows[0][0], Datum::Int(3));
    }

    #[test]
    fn tableless_select() {
        let r = RelationalDb::new()
            .execute("SELECT 1 + 2 AS three, 'x'")
            .unwrap();
        assert_eq!(r.columns, ["three", "x"]);
        assert_eq!(r.rows[0][0], Datum::Int(3));
    }

    #[test]
    fn scalar_functions() {
        let r = RelationalDb::new()
            .execute("SELECT LOWER('ABC'), UPPER('abc'), LENGTH('hello'), ABS(-4), ROUND(2.6)")
            .unwrap();
        assert_eq!(r.rows[0][0], Datum::Text("abc".into()));
        assert_eq!(r.rows[0][1], Datum::Text("ABC".into()));
        assert_eq!(r.rows[0][2], Datum::Int(5));
        assert_eq!(r.rows[0][3], Datum::Int(4));
        assert_eq!(r.rows[0][4], Datum::Float(3.0));
    }

    #[test]
    fn concat_skips_nulls() {
        let r = RelationalDb::new()
            .execute("SELECT CONCAT('a', NULL, 'b', 1)")
            .unwrap();
        assert_eq!(r.rows[0][0], Datum::Text("ab1".into()));
    }

    #[test]
    fn null_three_valued_logic() {
        let db = RelationalDb::new();
        db.execute("CREATE TABLE t (x INT)").unwrap();
        db.execute("INSERT INTO t VALUES (1), (NULL), (3)").unwrap();
        // NULL rows don't pass x > 0.
        let r = db.execute("SELECT COUNT(*) FROM t WHERE x > 0").unwrap();
        assert_eq!(r.rows[0][0], Datum::Int(2));
        // IS NULL finds them.
        let r2 = db
            .execute("SELECT COUNT(*) FROM t WHERE x IS NULL")
            .unwrap();
        assert_eq!(r2.rows[0][0], Datum::Int(1));
        let r3 = db
            .execute("SELECT COUNT(*) FROM t WHERE x IS NOT NULL")
            .unwrap();
        assert_eq!(r3.rows[0][0], Datum::Int(2));
        // COUNT(x) skips NULLs.
        let r4 = db.execute("SELECT COUNT(x) FROM t").unwrap();
        assert_eq!(r4.rows[0][0], Datum::Int(2));
    }

    #[test]
    fn not_in_with_null_is_unknown() {
        let db = RelationalDb::new();
        db.execute("CREATE TABLE t (x INT)").unwrap();
        db.execute("INSERT INTO t VALUES (5)").unwrap();
        // 5 NOT IN (1, NULL) is UNKNOWN, so the row is filtered out.
        let r = db
            .execute("SELECT COUNT(*) FROM t WHERE x NOT IN (1, NULL)")
            .unwrap();
        assert_eq!(r.rows[0][0], Datum::Int(0));
    }

    #[test]
    fn index_probe_matches_scan() {
        let db = db();
        let scan = db
            .execute("SELECT id FROM jobs WHERE city = 'san francisco' ORDER BY id")
            .unwrap();
        db.create_index("jobs", "city").unwrap();
        let probed = db
            .execute("SELECT id FROM jobs WHERE city = 'san francisco' ORDER BY id")
            .unwrap();
        assert_eq!(scan, probed);
    }

    #[test]
    fn index_maintained_on_insert() {
        let db = db();
        db.create_index("jobs", "city").unwrap();
        db.execute("INSERT INTO jobs VALUES (6, 'data engineer', 'san francisco', 170000.0, 1)")
            .unwrap();
        let r = db
            .execute("SELECT COUNT(*) FROM jobs WHERE city = 'san francisco'")
            .unwrap();
        assert_eq!(r.rows[0][0], Datum::Int(3));
    }

    #[test]
    fn index_with_extra_conjuncts_still_filters() {
        let db = db();
        db.create_index("jobs", "city").unwrap();
        let r = db
            .execute("SELECT id FROM jobs WHERE city = 'san francisco' AND salary > 150000")
            .unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.rows[0][0], Datum::Int(1));
    }

    #[test]
    fn unknown_table_and_column_errors() {
        let db = db();
        assert!(matches!(
            db.execute("SELECT * FROM ghosts"),
            Err(DataError::UnknownTable(_))
        ));
        assert!(matches!(
            db.execute("SELECT ghost FROM jobs"),
            Err(DataError::UnknownColumn(_))
        ));
    }

    #[test]
    fn ambiguous_column_errors() {
        let err = db()
            .execute("SELECT id FROM jobs JOIN companies ON jobs.company_id = companies.id")
            .unwrap_err();
        assert!(matches!(err, DataError::UnknownColumn(msg) if msg.contains("ambiguous")));
    }

    #[test]
    fn division_by_zero_errors() {
        assert!(RelationalDb::new().execute("SELECT 1 / 0").is_err());
        assert!(RelationalDb::new().execute("SELECT 1.0 / 0.0").is_err());
    }

    #[test]
    fn insert_with_column_subset_fills_null() {
        let db = RelationalDb::new();
        db.execute("CREATE TABLE t (a INT, b TEXT)").unwrap();
        db.execute("INSERT INTO t (b) VALUES ('only-b')").unwrap();
        let r = db.execute("SELECT a, b FROM t").unwrap();
        assert_eq!(r.rows[0][0], Datum::Null);
        assert_eq!(r.rows[0][1], Datum::Text("only-b".into()));
    }

    #[test]
    fn insert_type_mismatch_errors() {
        let db = RelationalDb::new();
        db.execute("CREATE TABLE t (a INT)").unwrap();
        assert!(db.execute("INSERT INTO t VALUES ('text')").is_err());
    }

    #[test]
    fn insert_int_into_float_coerces() {
        let db = RelationalDb::new();
        db.execute("CREATE TABLE t (a FLOAT)").unwrap();
        db.execute("INSERT INTO t VALUES (5)").unwrap();
        let r = db.execute("SELECT a FROM t").unwrap();
        assert_eq!(r.rows[0][0], Datum::Float(5.0));
    }

    #[test]
    fn duplicate_table_rejected() {
        let db = db();
        assert!(db.execute("CREATE TABLE jobs (x INT)").is_err());
    }

    #[test]
    fn qualified_wildcard_names_in_join() {
        let r = db()
            .execute("SELECT * FROM jobs j JOIN companies c ON j.company_id = c.id LIMIT 1")
            .unwrap();
        assert!(r.columns.contains(&"j.title".to_string()));
        assert!(r.columns.contains(&"c.name".to_string()));
    }

    #[test]
    fn result_set_json_shape() {
        let r = db()
            .execute("SELECT id, title FROM jobs WHERE id = 1")
            .unwrap();
        let j = r.to_json();
        assert_eq!(j[0]["id"], serde_json::json!(1));
        assert_eq!(j[0]["title"], serde_json::json!("data scientist"));
    }

    #[test]
    fn render_text_contains_header_and_rows() {
        let r = db().execute("SELECT id, title FROM jobs LIMIT 1").unwrap();
        let text = r.render_text();
        assert!(text.contains("id"));
        assert!(text.contains("data scientist"));
    }

    #[test]
    fn order_by_alias() {
        let r = db()
            .execute("SELECT title, COUNT(*) AS n FROM jobs GROUP BY title ORDER BY n DESC LIMIT 1")
            .unwrap();
        assert_eq!(r.rows[0][1], Datum::Int(2));
    }

    #[test]
    fn order_by_unprojected_expression_errors_clearly() {
        let err = db()
            .execute("SELECT title FROM jobs GROUP BY title ORDER BY salary")
            .unwrap_err();
        assert!(matches!(err, DataError::Eval(msg) if msg.contains("output column")));
    }

    #[test]
    fn group_by_city_counts() {
        let r = db()
            .execute("SELECT city, COUNT(*) AS n FROM jobs GROUP BY city ORDER BY n DESC, city")
            .unwrap();
        assert_eq!(r.rows[0][0], Datum::Text("san francisco".into()));
        assert_eq!(r.rows[0][1], Datum::Int(2));
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn like_is_case_insensitive() {
        let r = db()
            .execute("SELECT COUNT(*) FROM jobs WHERE title LIKE 'DATA%'")
            .unwrap();
        assert_eq!(r.rows[0][0], Datum::Int(3));
    }

    #[test]
    fn like_match_edge_cases() {
        assert!(like_match("", ""));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
        assert!(like_match("abc", "a%c"));
        assert!(like_match("abc", "%"));
        assert!(like_match("abc", "___"));
        assert!(!like_match("abc", "__"));
        assert!(like_match("a%b", "a%b"));
    }

    #[test]
    fn arithmetic_in_projection() {
        let r = db()
            .execute("SELECT id, salary / 1000 AS k FROM jobs WHERE id = 1")
            .unwrap();
        assert_eq!(r.rows[0][1], Datum::Float(180.0));
    }

    #[test]
    fn aggregate_outside_group_context_errors() {
        let err = db()
            .execute("SELECT title FROM jobs WHERE COUNT(*) > 1")
            .unwrap_err();
        assert!(matches!(err, DataError::Eval(_)));
    }

    #[test]
    fn having_with_non_aggregate_conjunct() {
        // Lenient semantics (as in SQLite): non-aggregate parts of HAVING
        // evaluate against the group's first row.
        let r = db()
            .execute(
                "SELECT title, COUNT(*) AS n FROM jobs GROUP BY title \
                 HAVING COUNT(*) > 1 AND title LIKE 'data%'",
            )
            .unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.rows[0][0], Datum::Text("data scientist".into()));
    }

    #[test]
    fn insert_unknown_column_errors() {
        let db = RelationalDb::new();
        db.execute("CREATE TABLE t (a INT)").unwrap();
        assert!(matches!(
            db.execute("INSERT INTO t (ghost) VALUES (1)"),
            Err(DataError::UnknownColumn(_))
        ));
    }

    #[test]
    fn insert_arity_mismatch_errors() {
        let db = RelationalDb::new();
        db.execute("CREATE TABLE t (a INT, b INT)").unwrap();
        assert!(matches!(
            db.execute("INSERT INTO t (a) VALUES (1, 2)"),
            Err(DataError::Schema(_))
        ));
    }

    #[test]
    fn empty_in_list_is_a_parse_error() {
        assert!(db().execute("SELECT * FROM jobs WHERE id IN ()").is_err());
    }

    #[test]
    fn where_on_empty_table_returns_nothing() {
        let db = RelationalDb::new();
        db.execute("CREATE TABLE t (a INT)").unwrap();
        let r = db.execute("SELECT * FROM t WHERE a > 5").unwrap();
        assert!(r.is_empty());
        assert_eq!(r.columns, ["a"]);
    }

    #[test]
    fn group_by_expression_key() {
        // Grouping on a computed expression, not just a bare column.
        let r = db()
            .execute("SELECT COUNT(*) AS n FROM jobs GROUP BY salary > 150000 ORDER BY n")
            .unwrap();
        assert_eq!(r.len(), 2);
        let total: i64 = r
            .rows
            .iter()
            .map(|row| match row[0] {
                Datum::Int(n) => n,
                _ => 0,
            })
            .sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn schema_introspection() {
        let db = db();
        assert_eq!(db.table_names(), ["companies", "jobs"]);
        assert_eq!(db.row_count("jobs"), 5);
        assert_eq!(db.row_count("ghosts"), 0);
        assert_eq!(db.schema_of("jobs").unwrap().arity(), 5);
        assert!(db.schema_of("ghosts").is_err());
    }
}
