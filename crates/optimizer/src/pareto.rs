//! Pareto analysis and constrained selection over QoS profiles.

use blueprint_agents::CostProfile;

use crate::budget::QosConstraints;
use crate::objective::Objective;

/// An option under consideration: an item with its estimated QoS.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate<T> {
    /// The option (a source name, model tier, plan id, ...).
    pub item: T,
    /// Estimated QoS of choosing it.
    pub profile: CostProfile,
}

impl<T> Candidate<T> {
    /// Creates a candidate.
    pub fn new(item: T, profile: CostProfile) -> Self {
        Candidate { item, profile }
    }
}

/// `a` dominates `b` if it is no worse on every axis and strictly better on
/// at least one (cost ↓, latency ↓, accuracy ↑).
fn dominates(a: &CostProfile, b: &CostProfile) -> bool {
    let no_worse = a.cost_per_call <= b.cost_per_call
        && a.latency_micros <= b.latency_micros
        && a.accuracy >= b.accuracy;
    let strictly_better = a.cost_per_call < b.cost_per_call
        || a.latency_micros < b.latency_micros
        || a.accuracy > b.accuracy;
    no_worse && strictly_better
}

/// Returns the indices of the non-dominated candidates, in input order.
pub fn pareto_frontier<T>(candidates: &[Candidate<T>]) -> Vec<usize> {
    (0..candidates.len())
        .filter(|&i| {
            !candidates
                .iter()
                .enumerate()
                .any(|(j, other)| j != i && dominates(&other.profile, &candidates[i].profile))
        })
        .collect()
}

/// Picks the best feasible candidate: filters by constraints, then minimizes
/// the objective score (ties broken by input order). Returns its index.
pub fn select<T>(
    candidates: &[Candidate<T>],
    objective: Objective,
    constraints: &QosConstraints,
) -> Option<usize> {
    candidates
        .iter()
        .enumerate()
        .filter(|(_, c)| constraints.admits(&c.profile))
        .min_by(|(_, a), (_, b)| {
            objective
                .score(&a.profile)
                .partial_cmp(&objective.score(&b.profile))
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .map(|(i, _)| i)
}

/// Assigns one option per plan node so the *sequential composition* of the
/// chosen profiles optimizes `objective` subject to `constraints`.
///
/// Searches exhaustively when the cartesian space is ≤ `EXHAUSTIVE_LIMIT`
/// combinations; otherwise falls back to a greedy per-node choice followed
/// by a repair pass that upgrades accuracy-critical nodes while constraints
/// are violated.
///
/// Returns the chosen option index per node, or `None` when no feasible
/// assignment was found.
pub fn optimize_choices(
    nodes: &[Vec<CostProfile>],
    objective: Objective,
    constraints: &QosConstraints,
) -> Option<Vec<usize>> {
    if nodes.is_empty() {
        return Some(Vec::new());
    }
    if nodes.iter().any(Vec::is_empty) {
        return None;
    }
    const EXHAUSTIVE_LIMIT: usize = 4096;
    let space: usize = nodes.iter().map(Vec::len).product();
    if space <= EXHAUSTIVE_LIMIT {
        exhaustive(nodes, objective, constraints)
    } else {
        greedy(nodes, objective, constraints)
    }
}

fn compose(nodes: &[Vec<CostProfile>], choice: &[usize]) -> CostProfile {
    let mut total = CostProfile::FREE;
    for (node, &c) in nodes.iter().zip(choice) {
        total = total.then(&node[c]);
    }
    total
}

fn exhaustive(
    nodes: &[Vec<CostProfile>],
    objective: Objective,
    constraints: &QosConstraints,
) -> Option<Vec<usize>> {
    let mut best: Option<(f64, Vec<usize>)> = None;
    let mut choice = vec![0usize; nodes.len()];
    loop {
        let total = compose(nodes, &choice);
        if constraints.admits(&total) {
            let score = objective.score(&total);
            if best.as_ref().is_none_or(|(b, _)| score < *b) {
                best = Some((score, choice.clone()));
            }
        }
        // Odometer increment.
        let mut i = 0;
        loop {
            if i == nodes.len() {
                return best.map(|(_, c)| c);
            }
            choice[i] += 1;
            if choice[i] < nodes[i].len() {
                break;
            }
            choice[i] = 0;
            i += 1;
        }
    }
}

fn greedy(
    nodes: &[Vec<CostProfile>],
    objective: Objective,
    constraints: &QosConstraints,
) -> Option<Vec<usize>> {
    // Per-node best by objective, ignoring constraints.
    let mut choice: Vec<usize> = nodes
        .iter()
        .map(|options| {
            options
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    objective
                        .score(a)
                        .partial_cmp(&objective.score(b))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .map(|(i, _)| i)
                .expect("non-empty options")
        })
        .collect();

    // Repair: while the composed plan violates constraints, switch the node
    // whose alternative most improves the violated axis.
    for _ in 0..nodes.len() * 4 {
        let total = compose(nodes, &choice);
        if constraints.admits(&total) {
            return Some(choice);
        }
        let mut best_fix: Option<(f64, usize, usize)> = None; // (improvement, node, option)
        for (n, options) in nodes.iter().enumerate() {
            for o in 0..options.len() {
                if o == choice[n] {
                    continue;
                }
                let mut alt = choice.clone();
                alt[n] = o;
                let alt_total = compose(nodes, &alt);
                let improvement =
                    violation(constraints, &total) - violation(constraints, &alt_total);
                if improvement > 0.0 && best_fix.as_ref().is_none_or(|(b, _, _)| improvement > *b) {
                    best_fix = Some((improvement, n, o));
                }
            }
        }
        match best_fix {
            Some((_, n, o)) => choice[n] = o,
            None => return None,
        }
    }
    let total = compose(nodes, &choice);
    constraints.admits(&total).then_some(choice)
}

/// A scalar measure of how badly a profile violates the constraints
/// (0 when feasible).
fn violation(constraints: &QosConstraints, p: &CostProfile) -> f64 {
    let mut v = 0.0;
    if let Some(max_cost) = constraints.max_cost {
        v += (p.cost_per_call - max_cost).max(0.0);
    }
    if let Some(max_latency) = constraints.max_latency_micros {
        v += (p.latency_micros.saturating_sub(max_latency)) as f64 / 1000.0;
    }
    if let Some(min_acc) = constraints.min_accuracy {
        v += (min_acc - p.accuracy).max(0.0) * 100.0;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiers() -> Vec<CostProfile> {
        vec![
            CostProfile::new(10.0, 300_000, 0.98), // large
            CostProfile::new(1.0, 80_000, 0.90),   // small
            CostProfile::new(0.1, 20_000, 0.75),   // tiny
        ]
    }

    #[test]
    fn frontier_excludes_dominated() {
        let mut cands: Vec<Candidate<&str>> = tiers()
            .into_iter()
            .zip(["large", "small", "tiny"])
            .map(|(p, n)| Candidate::new(n, p))
            .collect();
        // Add a strictly dominated option: costlier, slower, less accurate
        // than "small".
        cands.push(Candidate::new("bad", CostProfile::new(2.0, 100_000, 0.85)));
        let frontier = pareto_frontier(&cands);
        assert_eq!(frontier, vec![0, 1, 2]);
    }

    #[test]
    fn frontier_of_identical_profiles_keeps_all() {
        let p = CostProfile::new(1.0, 1, 0.9);
        let cands = vec![Candidate::new(1, p), Candidate::new(2, p)];
        assert_eq!(pareto_frontier(&cands).len(), 2);
    }

    #[test]
    fn select_respects_constraints() {
        let cands: Vec<Candidate<&str>> = tiers()
            .into_iter()
            .zip(["large", "small", "tiny"])
            .map(|(p, n)| Candidate::new(n, p))
            .collect();
        // Cheapest overall is tiny...
        let unconstrained = select(&cands, Objective::MinCost, &QosConstraints::none()).unwrap();
        assert_eq!(cands[unconstrained].item, "tiny");
        // ...but with a 0.85 accuracy floor, small is the cheapest feasible.
        let constrained = select(
            &cands,
            Objective::MinCost,
            &QosConstraints::none().with_min_accuracy(0.85),
        )
        .unwrap();
        assert_eq!(cands[constrained].item, "small");
        // Infeasible constraints yield None.
        assert!(select(
            &cands,
            Objective::MinCost,
            &QosConstraints::none().with_min_accuracy(0.999),
        )
        .is_none());
    }

    #[test]
    fn optimize_choices_exhaustive_finds_crossover() {
        // Two nodes, each choosing a tier. Accuracy floor 0.8 composed:
        // tiny+tiny = 0.5625 (out), small+small = 0.81 (in).
        let nodes = vec![tiers(), tiers()];
        let choice = optimize_choices(
            &nodes,
            Objective::MinCost,
            &QosConstraints::none().with_min_accuracy(0.80),
        )
        .unwrap();
        let total = compose(&nodes, &choice);
        assert!(total.accuracy >= 0.80);
        // The minimal-cost feasible assignment is small+small (cost 2.0).
        assert_eq!(choice, vec![1, 1]);
    }

    #[test]
    fn optimize_choices_empty_and_infeasible() {
        assert_eq!(
            optimize_choices(&[], Objective::MinCost, &QosConstraints::none()),
            Some(vec![])
        );
        assert!(optimize_choices(&[vec![]], Objective::MinCost, &QosConstraints::none()).is_none());
        let nodes = vec![tiers()];
        assert!(optimize_choices(
            &nodes,
            Objective::MinCost,
            &QosConstraints::none().with_max_cost(0.01),
        )
        .is_none());
    }

    #[test]
    fn greedy_path_repairs_to_feasibility() {
        // 13 nodes × 3 options = 3^13 > 4096 → greedy path.
        let nodes: Vec<Vec<CostProfile>> = (0..13).map(|_| tiers()).collect();
        // Cost-min greedy picks all-tiny (accuracy 0.75^13 ≈ 0.024); the
        // accuracy floor forces upgrades.
        let choice = optimize_choices(
            &nodes,
            Objective::MinCost,
            &QosConstraints::none().with_min_accuracy(0.2),
        )
        .unwrap();
        let total = compose(&nodes, &choice);
        assert!(total.accuracy >= 0.2);
        // It should not have upgraded everything to large.
        assert!(choice.iter().any(|&c| c != 0));
    }

    #[test]
    fn greedy_detects_infeasible() {
        let nodes: Vec<Vec<CostProfile>> = (0..13).map(|_| tiers()).collect();
        assert!(optimize_choices(
            &nodes,
            Objective::MinCost,
            &QosConstraints::none().with_min_accuracy(0.999),
        )
        .is_none());
    }

    #[test]
    fn latency_constraint_prunes_slow_plans() {
        let nodes = vec![tiers(), tiers()];
        let choice = optimize_choices(
            &nodes,
            Objective::MaxAccuracy,
            &QosConstraints::none().with_max_latency_micros(200_000),
        )
        .unwrap();
        let total = compose(&nodes, &choice);
        assert!(total.latency_micros <= 200_000);
        // Accuracy-max under the latency cap: small+small (160k µs, 0.81)
        // beats anything involving large (≥ 320k µs).
        assert_eq!(choice, vec![1, 1]);
    }
}
