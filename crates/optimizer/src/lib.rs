//! # blueprint-optimizer
//!
//! Multi-objective optimization over task and data plans (§V-G "Optimization
//! plays a crucial role", §IV "optimizer: performs multi-objective
//! optimization over task and data plans") plus the **budget** component
//! (§IV, §V-H): "records of the current and projected QoS stats to guide
//! execution \[and\] planning".
//!
//! The optimizer works over [`CostProfile`]s (cost, latency, accuracy):
//!
//! * [`pareto_frontier`] — the non-dominated set of candidates;
//! * [`select`] — pick the best feasible candidate under
//!   [`QosConstraints`] for an [`Objective`];
//! * [`optimize_choices`] — assign one option per plan node (e.g. a model
//!   tier per operator), exhaustively for small search spaces and greedily
//!   for large ones;
//! * [`optimize_unified`] — joint Pareto-pruned assignment over the unified
//!   plan IR's choice points (model tiers on agent nodes *and* parametric
//!   sources on data operators in one search space);
//! * [`Budget`] — runtime tracking of projected vs. actual QoS with
//!   violation detection, consumed by the task coordinator.

pub mod budget;
pub mod objective;
pub mod pareto;
pub mod unified;

pub use budget::{Budget, BudgetStatus, QosConstraints, SharedBudget};
pub use objective::Objective;
pub use pareto::{optimize_choices, pareto_frontier, select, Candidate};
pub use unified::{optimize_unified, ChoicePoint, UnifiedSelection};

pub use blueprint_agents::CostProfile;
