//! Optimization objectives.

use serde::{Deserialize, Serialize};

use blueprint_agents::CostProfile;

/// What the planner is asked to optimize for.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Objective {
    /// Minimize monetary cost.
    MinCost,
    /// Minimize end-to-end latency.
    MinLatency,
    /// Maximize expected accuracy.
    MaxAccuracy,
    /// Weighted scalarization: minimize
    /// `cost_w·cost + latency_w·latency_ms − accuracy_w·accuracy·100`.
    Weighted {
        /// Weight on cost units.
        cost_w: f64,
        /// Weight on latency (milliseconds).
        latency_w: f64,
        /// Weight on accuracy (scaled ×100 so defaults are comparable).
        accuracy_w: f64,
    },
}

impl Objective {
    /// A balanced weighted objective.
    pub fn balanced() -> Self {
        Objective::Weighted {
            cost_w: 1.0,
            latency_w: 1.0,
            accuracy_w: 1.0,
        }
    }

    /// Scalar score of a profile: **lower is better** for every variant.
    pub fn score(&self, p: &CostProfile) -> f64 {
        match self {
            Objective::MinCost => p.cost_per_call,
            Objective::MinLatency => p.latency_micros as f64,
            Objective::MaxAccuracy => -p.accuracy,
            Objective::Weighted {
                cost_w,
                latency_w,
                accuracy_w,
            } => {
                cost_w * p.cost_per_call + latency_w * (p.latency_micros as f64 / 1000.0)
                    - accuracy_w * p.accuracy * 100.0
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cheap() -> CostProfile {
        CostProfile::new(0.1, 10_000, 0.7)
    }

    fn premium() -> CostProfile {
        CostProfile::new(10.0, 300_000, 0.99)
    }

    #[test]
    fn min_cost_prefers_cheap() {
        assert!(Objective::MinCost.score(&cheap()) < Objective::MinCost.score(&premium()));
    }

    #[test]
    fn min_latency_prefers_fast() {
        assert!(Objective::MinLatency.score(&cheap()) < Objective::MinLatency.score(&premium()));
    }

    #[test]
    fn max_accuracy_prefers_premium() {
        assert!(Objective::MaxAccuracy.score(&premium()) < Objective::MaxAccuracy.score(&cheap()));
    }

    #[test]
    fn weighted_trades_off() {
        // With accuracy weighted heavily, premium wins despite its cost.
        let acc_heavy = Objective::Weighted {
            cost_w: 0.1,
            latency_w: 0.01,
            accuracy_w: 10.0,
        };
        assert!(acc_heavy.score(&premium()) < acc_heavy.score(&cheap()));
        // With cost weighted heavily, cheap wins.
        let cost_heavy = Objective::Weighted {
            cost_w: 100.0,
            latency_w: 0.0,
            accuracy_w: 1.0,
        };
        assert!(cost_heavy.score(&cheap()) < cost_heavy.score(&premium()));
    }

    #[test]
    fn balanced_is_weighted() {
        assert!(matches!(Objective::balanced(), Objective::Weighted { .. }));
    }
}
