//! QoS constraints and the runtime budget.
//!
//! The paper's **budget** component keeps "records of the current and
//! projected QoS stats to guide execution \[and\] planning" (§IV). The task
//! coordinator charges actual costs as agent reports arrive and aborts or
//! replans when the projection exceeds the constraints (§V-H).

use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use blueprint_agents::CostProfile;
use blueprint_observability::{Counter, MetricsRegistry};

/// Hard QoS limits on a task.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct QosConstraints {
    /// Maximum total monetary cost (cost units).
    pub max_cost: Option<f64>,
    /// Maximum end-to-end latency in simulated microseconds.
    pub max_latency_micros: Option<u64>,
    /// Minimum acceptable accuracy.
    pub min_accuracy: Option<f64>,
}

impl QosConstraints {
    /// No constraints.
    pub fn none() -> Self {
        Self::default()
    }

    /// Builder-style: caps cost.
    pub fn with_max_cost(mut self, max: f64) -> Self {
        self.max_cost = Some(max);
        self
    }

    /// Builder-style: caps latency.
    pub fn with_max_latency_micros(mut self, max: u64) -> Self {
        self.max_latency_micros = Some(max);
        self
    }

    /// Builder-style: sets an accuracy floor.
    pub fn with_min_accuracy(mut self, min: f64) -> Self {
        self.min_accuracy = Some(min);
        self
    }

    /// True if a profile satisfies every limit.
    pub fn admits(&self, p: &CostProfile) -> bool {
        self.max_cost.is_none_or(|m| p.cost_per_call <= m)
            && self
                .max_latency_micros
                .is_none_or(|m| p.latency_micros <= m)
            && self.min_accuracy.is_none_or(|m| p.accuracy >= m)
    }
}

/// Verdict of a budget check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BudgetStatus {
    /// Within limits, including projections.
    Healthy,
    /// Actuals are within limits but actual+projected exceeds them — the
    /// coordinator should consider replanning (§V-H).
    ProjectedOverrun,
    /// Actuals already exceed a limit — abort.
    Exceeded,
}

/// Runtime QoS ledger for one task execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Budget {
    /// The task's limits.
    pub constraints: QosConstraints,
    /// Cost actually incurred so far.
    pub spent_cost: f64,
    /// Latency actually incurred so far (µs).
    pub spent_latency_micros: u64,
    /// Running accuracy estimate of completed steps (product).
    pub accuracy_so_far: f64,
    /// Projected cost of the remaining plan (set from optimizer estimates).
    pub projected_cost: f64,
    /// Projected latency of the remaining plan (µs).
    pub projected_latency_micros: u64,
    /// Projected accuracy of the remaining plan.
    pub projected_accuracy: f64,
}

impl Budget {
    /// A fresh budget under the given constraints with no projection.
    pub fn new(constraints: QosConstraints) -> Self {
        Budget {
            constraints,
            spent_cost: 0.0,
            spent_latency_micros: 0,
            accuracy_so_far: 1.0,
            projected_cost: 0.0,
            projected_latency_micros: 0,
            projected_accuracy: 1.0,
        }
    }

    /// Installs the optimizer's projection for the (remaining) plan.
    pub fn set_projection(&mut self, remaining: &CostProfile) {
        self.projected_cost = remaining.cost_per_call;
        self.projected_latency_micros = remaining.latency_micros;
        self.projected_accuracy = remaining.accuracy;
    }

    /// Charges the actual QoS of one completed step and reduces the
    /// projection by that step's estimate.
    pub fn charge(&mut self, actual_cost: f64, actual_latency_micros: u64, step_accuracy: f64) {
        self.spent_cost += actual_cost.max(0.0);
        self.spent_latency_micros += actual_latency_micros;
        self.accuracy_so_far *= step_accuracy.clamp(0.0, 1.0);
    }

    /// Reduces the remaining projection after a step completes.
    pub fn consume_projection(&mut self, step: &CostProfile) {
        self.projected_cost = (self.projected_cost - step.cost_per_call).max(0.0);
        self.projected_latency_micros = self
            .projected_latency_micros
            .saturating_sub(step.latency_micros);
        if step.accuracy > 0.0 {
            self.projected_accuracy = (self.projected_accuracy / step.accuracy).clamp(0.0, 1.0);
        }
    }

    /// Total = actual + projected, as a profile.
    pub fn projected_total(&self) -> CostProfile {
        CostProfile {
            cost_per_call: self.spent_cost + self.projected_cost,
            latency_micros: self.spent_latency_micros + self.projected_latency_micros,
            accuracy: self.accuracy_so_far * self.projected_accuracy,
        }
    }

    /// Actuals only, as a profile.
    pub fn actual(&self) -> CostProfile {
        CostProfile {
            cost_per_call: self.spent_cost,
            latency_micros: self.spent_latency_micros,
            accuracy: self.accuracy_so_far,
        }
    }

    /// Checks the ledger against the constraints.
    pub fn status(&self) -> BudgetStatus {
        // Accuracy floors are checked on the projection only: accuracy does
        // not "run out" the way cost does, but a projection below the floor
        // means the plan cannot meet it.
        let actual_over = self
            .constraints
            .max_cost
            .is_some_and(|m| self.spent_cost > m)
            || self
                .constraints
                .max_latency_micros
                .is_some_and(|m| self.spent_latency_micros > m);
        if actual_over {
            return BudgetStatus::Exceeded;
        }
        if !self.constraints.admits(&self.projected_total()) {
            return BudgetStatus::ProjectedOverrun;
        }
        BudgetStatus::Healthy
    }

    /// Remaining cost headroom (infinite when unconstrained).
    pub fn remaining_cost(&self) -> f64 {
        self.constraints
            .max_cost
            .map(|m| (m - self.spent_cost).max(0.0))
            .unwrap_or(f64::INFINITY)
    }

    /// The constraints that remain for the not-yet-executed plan suffix:
    /// cost/latency caps shrunk by what was already spent, accuracy floor
    /// unchanged. Used by mid-flight re-optimization to re-select data
    /// sources and model tiers under the headroom that is actually left.
    pub fn remaining_constraints(&self) -> QosConstraints {
        QosConstraints {
            max_cost: self
                .constraints
                .max_cost
                .map(|m| (m - self.spent_cost).max(0.0)),
            max_latency_micros: self
                .constraints
                .max_latency_micros
                .map(|m| m.saturating_sub(self.spent_latency_micros)),
            min_accuracy: self.constraints.min_accuracy,
        }
    }
}

/// A [`Budget`] shared by concurrently executing plan nodes.
///
/// The parallel scheduler dispatches every ready node at once, so charges,
/// projection consumption, retry/backoff debits, and status checks race.
/// All accounting goes through one mutex so the ledger stays exact: charges
/// are additive and commutative, so the final totals are independent of the
/// order in which racing nodes land their updates.
#[derive(Clone)]
pub struct SharedBudget {
    inner: Arc<Mutex<Budget>>,
    debits: Counter,
}

impl SharedBudget {
    /// Wraps a budget for concurrent use.
    pub fn new(budget: Budget) -> Self {
        SharedBudget {
            inner: Arc::new(Mutex::new(budget)),
            debits: Counter::default(),
        }
    }

    /// Reports every debit into `blueprint.optimizer.budget_debits`.
    pub fn with_metrics(mut self, metrics: &MetricsRegistry) -> Self {
        self.debits = metrics.counter("blueprint.optimizer.budget_debits");
        self
    }

    /// Charges the actual QoS of one completed step (see [`Budget::charge`]).
    pub fn charge(&self, actual_cost: f64, actual_latency_micros: u64, step_accuracy: f64) {
        self.debits.inc();
        self.inner
            .lock()
            .charge(actual_cost, actual_latency_micros, step_accuracy);
    }

    /// Reduces the remaining projection after a step completes.
    pub fn consume_projection(&self, step: &CostProfile) {
        self.inner.lock().consume_projection(step);
    }

    /// Checks the ledger against the constraints.
    pub fn status(&self) -> BudgetStatus {
        self.inner.lock().status()
    }

    /// A point-in-time copy of the ledger.
    pub fn snapshot(&self) -> Budget {
        self.inner.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constraints_admit_matrix() {
        let c = QosConstraints::none()
            .with_max_cost(5.0)
            .with_max_latency_micros(100)
            .with_min_accuracy(0.8);
        assert!(c.admits(&CostProfile::new(5.0, 100, 0.8)));
        assert!(!c.admits(&CostProfile::new(5.1, 100, 0.8)));
        assert!(!c.admits(&CostProfile::new(5.0, 101, 0.8)));
        assert!(!c.admits(&CostProfile::new(5.0, 100, 0.79)));
        assert!(QosConstraints::none().admits(&CostProfile::new(1e9, u64::MAX, 0.0)));
    }

    #[test]
    fn fresh_budget_is_healthy() {
        let b = Budget::new(QosConstraints::none().with_max_cost(1.0));
        assert_eq!(b.status(), BudgetStatus::Healthy);
        assert_eq!(b.remaining_cost(), 1.0);
    }

    #[test]
    fn charge_accumulates_and_detects_exceeded() {
        let mut b = Budget::new(QosConstraints::none().with_max_cost(1.0));
        b.charge(0.6, 10, 0.95);
        assert_eq!(b.status(), BudgetStatus::Healthy);
        assert!((b.remaining_cost() - 0.4).abs() < 1e-9);
        b.charge(0.6, 10, 0.95);
        assert_eq!(b.status(), BudgetStatus::Exceeded);
        assert_eq!(b.remaining_cost(), 0.0);
    }

    #[test]
    fn latency_exceeded() {
        let mut b = Budget::new(QosConstraints::none().with_max_latency_micros(100));
        b.charge(0.0, 101, 1.0);
        assert_eq!(b.status(), BudgetStatus::Exceeded);
    }

    #[test]
    fn projection_triggers_overrun_before_actuals() {
        let mut b = Budget::new(QosConstraints::none().with_max_cost(1.0));
        b.set_projection(&CostProfile::new(0.9, 0, 1.0));
        b.charge(0.2, 0, 1.0);
        // Spent 0.2 + projected 0.9 = 1.1 > 1.0, but actuals are fine.
        assert_eq!(b.status(), BudgetStatus::ProjectedOverrun);
        // After consuming part of the projection the plan can be healthy.
        b.consume_projection(&CostProfile::new(0.9, 0, 1.0));
        assert_eq!(b.status(), BudgetStatus::Healthy);
    }

    #[test]
    fn accuracy_floor_checked_on_projection() {
        let mut b = Budget::new(QosConstraints::none().with_min_accuracy(0.9));
        b.charge(0.0, 0, 0.85);
        assert_eq!(b.status(), BudgetStatus::ProjectedOverrun);
    }

    #[test]
    fn projected_total_composes() {
        let mut b = Budget::new(QosConstraints::none());
        b.charge(1.0, 100, 0.9);
        b.set_projection(&CostProfile::new(2.0, 200, 0.8));
        let total = b.projected_total();
        assert!((total.cost_per_call - 3.0).abs() < 1e-9);
        assert_eq!(total.latency_micros, 300);
        assert!((total.accuracy - 0.72).abs() < 1e-9);
        let actual = b.actual();
        assert!((actual.cost_per_call - 1.0).abs() < 1e-9);
    }

    #[test]
    fn negative_charges_ignored() {
        let mut b = Budget::new(QosConstraints::none().with_max_cost(1.0));
        b.charge(-5.0, 0, 1.5);
        assert_eq!(b.spent_cost, 0.0);
        assert_eq!(b.accuracy_so_far, 1.0);
    }

    #[test]
    fn remaining_constraints_shrink_with_spend() {
        let mut b = Budget::new(
            QosConstraints::none()
                .with_max_cost(10.0)
                .with_max_latency_micros(1_000)
                .with_min_accuracy(0.8),
        );
        b.charge(4.0, 300, 0.95);
        let rem = b.remaining_constraints();
        assert!((rem.max_cost.unwrap() - 6.0).abs() < 1e-9);
        assert_eq!(rem.max_latency_micros, Some(700));
        assert_eq!(rem.min_accuracy, Some(0.8));
        // Overspend saturates at zero instead of going negative.
        b.charge(100.0, 10_000, 1.0);
        let rem = b.remaining_constraints();
        assert_eq!(rem.max_cost, Some(0.0));
        assert_eq!(rem.max_latency_micros, Some(0));
        // Unconstrained axes stay unconstrained.
        let rem = Budget::new(QosConstraints::none()).remaining_constraints();
        assert_eq!(rem, QosConstraints::none());
    }

    #[test]
    fn consume_projection_saturates() {
        let mut b = Budget::new(QosConstraints::none());
        b.set_projection(&CostProfile::new(1.0, 100, 0.9));
        b.consume_projection(&CostProfile::new(5.0, 500, 0.9));
        assert_eq!(b.projected_cost, 0.0);
        assert_eq!(b.projected_latency_micros, 0);
    }
}
