//! Joint optimization over the unified plan IR's choice points.
//!
//! The planner lowers task plans and spliced data plans into one DAG whose
//! nodes each expose a list of interchangeable implementations (model tiers
//! for LLM-backed agent nodes, parametric sources for data operators). This
//! module ranks that *joint* space: every choice point is first pruned to its
//! Pareto frontier, then [`optimize_choices`] assigns one option per point so
//! the sequential composition optimizes the objective under the constraints.
//!
//! Per-point Pareto pruning is sound because composition is monotone on every
//! axis: replacing a dominated option with its dominator never increases cost
//! or latency and never decreases accuracy of the composed profile, so no
//! optimal feasible assignment is lost.

use blueprint_agents::CostProfile;

use crate::budget::QosConstraints;
use crate::objective::Objective;
use crate::pareto::{optimize_choices, pareto_frontier, Candidate};

/// One node of the unified IR that admits several implementations.
#[derive(Debug, Clone, PartialEq)]
pub struct ChoicePoint<T> {
    /// IR node id this choice applies to.
    pub node: String,
    /// The interchangeable implementations with their estimated QoS.
    pub options: Vec<Candidate<T>>,
}

impl<T> ChoicePoint<T> {
    /// Creates a choice point.
    pub fn new(node: impl Into<String>, options: Vec<Candidate<T>>) -> Self {
        ChoicePoint {
            node: node.into(),
            options,
        }
    }
}

/// Result of a joint optimization pass over the IR's choice points.
#[derive(Debug, Clone, PartialEq)]
pub struct UnifiedSelection {
    /// Chosen option index per choice point (indices into the *original*
    /// `options` vectors, in the same order the points were given).
    pub assignment: Vec<usize>,
    /// Sequential composition of the chosen profiles.
    pub composed: CostProfile,
}

/// Assigns one option per choice point so the composed profile optimizes
/// `objective` subject to `constraints`, searching model tiers and data
/// sources in a single space.
///
/// Dominated options are removed per point before the joint search, shrinking
/// the cartesian space without affecting optimality (see module docs).
/// Returns `None` when any point has no options or no feasible assignment
/// exists.
pub fn optimize_unified<T>(
    points: &[ChoicePoint<T>],
    objective: Objective,
    constraints: &QosConstraints,
) -> Option<UnifiedSelection> {
    if points.iter().any(|p| p.options.is_empty()) {
        return None;
    }
    // Per-point frontier indices (into the original options).
    let frontiers: Vec<Vec<usize>> = points.iter().map(|p| pareto_frontier(&p.options)).collect();
    let pruned: Vec<Vec<CostProfile>> = points
        .iter()
        .zip(&frontiers)
        .map(|(p, keep)| keep.iter().map(|&i| p.options[i].profile).collect())
        .collect();
    let choice = optimize_choices(&pruned, objective, constraints)?;
    // Map the frontier-relative choice back to original option indices.
    let assignment: Vec<usize> = choice
        .iter()
        .zip(&frontiers)
        .map(|(&c, keep)| keep[c])
        .collect();
    let mut composed = CostProfile::FREE;
    for (point, &pick) in points.iter().zip(&assignment) {
        composed = composed.then(&point.options[pick].profile);
    }
    Some(UnifiedSelection {
        assignment,
        composed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tier_options() -> Vec<Candidate<&'static str>> {
        vec![
            Candidate::new("sim-large", CostProfile::new(10.0, 300_000, 0.98)),
            Candidate::new("sim-small", CostProfile::new(1.0, 80_000, 0.90)),
            Candidate::new("sim-tiny", CostProfile::new(0.1, 20_000, 0.75)),
        ]
    }

    fn source_options() -> Vec<Candidate<&'static str>> {
        vec![
            Candidate::new("gpt-large", CostProfile::new(0.24, 680, 0.98)),
            Candidate::new("gpt-small", CostProfile::new(0.024, 180, 0.90)),
        ]
    }

    #[test]
    fn joint_space_mixes_tiers_and_sources() {
        let points = vec![
            ChoicePoint::new("n1", tier_options()),
            ChoicePoint::new("d3", source_options()),
        ];
        let sel = optimize_unified(
            &points,
            Objective::MinCost,
            &QosConstraints::none().with_min_accuracy(0.85),
        )
        .unwrap();
        // Cheapest composition with accuracy ≥ 0.85 is small tier × large
        // source (0.90 × 0.98 = 0.882); small × small is 0.81, out.
        assert_eq!(points[0].options[sel.assignment[0]].item, "sim-small");
        assert_eq!(points[1].options[sel.assignment[1]].item, "gpt-large");
        assert!(sel.composed.accuracy >= 0.85);
    }

    #[test]
    fn dominated_options_are_pruned_without_changing_the_answer() {
        let mut opts = tier_options();
        // Strictly dominated by sim-small on every axis.
        opts.push(Candidate::new("bad", CostProfile::new(2.0, 100_000, 0.85)));
        let points = vec![ChoicePoint::new("n1", opts)];
        let sel = optimize_unified(
            &points,
            Objective::MinCost,
            &QosConstraints::none().with_min_accuracy(0.85),
        )
        .unwrap();
        assert_eq!(points[0].options[sel.assignment[0]].item, "sim-small");
    }

    #[test]
    fn assignment_indices_refer_to_original_options() {
        // Put a dominated option *first* so frontier indices shift.
        let opts = vec![
            Candidate::new("bad", CostProfile::new(20.0, 900_000, 0.50)),
            Candidate::new("good", CostProfile::new(1.0, 10_000, 0.95)),
        ];
        let points = vec![ChoicePoint::new("n1", opts)];
        let sel = optimize_unified(&points, Objective::MinCost, &QosConstraints::none()).unwrap();
        assert_eq!(sel.assignment, vec![1]);
        assert_eq!(points[0].options[1].item, "good");
    }

    #[test]
    fn empty_point_list_is_free() {
        let sel =
            optimize_unified::<&str>(&[], Objective::MinCost, &QosConstraints::none()).unwrap();
        assert!(sel.assignment.is_empty());
        assert_eq!(sel.composed, CostProfile::FREE);
    }

    #[test]
    fn infeasible_returns_none() {
        let points = vec![ChoicePoint::new("n1", tier_options())];
        assert!(optimize_unified(
            &points,
            Objective::MinCost,
            &QosConstraints::none().with_min_accuracy(0.999),
        )
        .is_none());
        assert!(optimize_unified::<&str>(
            &[ChoicePoint::new("n1", vec![])],
            Objective::MinCost,
            &QosConstraints::none(),
        )
        .is_none());
    }
}
