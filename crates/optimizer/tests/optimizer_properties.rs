//! Property-based tests for the optimizer's invariants.

use blueprint_optimizer::{
    optimize_choices, pareto_frontier, select, Budget, Candidate, CostProfile, Objective,
    QosConstraints,
};
use proptest::prelude::*;

fn profile_strategy() -> impl Strategy<Value = CostProfile> {
    (0.0f64..20.0, 0u64..500_000, 0.0f64..1.0).prop_map(|(c, l, a)| CostProfile::new(c, l, a))
}

fn candidates_strategy() -> impl Strategy<Value = Vec<Candidate<usize>>> {
    prop::collection::vec(profile_strategy(), 1..40).prop_map(|ps| {
        ps.into_iter()
            .enumerate()
            .map(|(i, p)| Candidate::new(i, p))
            .collect()
    })
}

fn dominates(a: &CostProfile, b: &CostProfile) -> bool {
    let no_worse = a.cost_per_call <= b.cost_per_call
        && a.latency_micros <= b.latency_micros
        && a.accuracy >= b.accuracy;
    let better = a.cost_per_call < b.cost_per_call
        || a.latency_micros < b.latency_micros
        || a.accuracy > b.accuracy;
    no_worse && better
}

proptest! {
    /// No frontier member is dominated by any candidate.
    #[test]
    fn frontier_members_are_non_dominated(cands in candidates_strategy()) {
        let frontier = pareto_frontier(&cands);
        prop_assert!(!frontier.is_empty());
        for &i in &frontier {
            for (j, other) in cands.iter().enumerate() {
                if i != j {
                    prop_assert!(
                        !dominates(&other.profile, &cands[i].profile),
                        "candidate {j} dominates frontier member {i}"
                    );
                }
            }
        }
    }

    /// Every non-frontier candidate is dominated by someone.
    #[test]
    fn non_frontier_members_are_dominated(cands in candidates_strategy()) {
        let frontier: std::collections::HashSet<usize> =
            pareto_frontier(&cands).into_iter().collect();
        for i in 0..cands.len() {
            if !frontier.contains(&i) {
                let dominated = cands
                    .iter()
                    .enumerate()
                    .any(|(j, other)| j != i && dominates(&other.profile, &cands[i].profile));
                prop_assert!(dominated, "non-frontier candidate {i} is not dominated");
            }
        }
    }

    /// `select` returns a feasible candidate with the minimal score.
    #[test]
    fn select_is_feasible_and_minimal(
        cands in candidates_strategy(),
        max_cost in 0.0f64..25.0,
        min_acc in 0.0f64..1.0,
    ) {
        let constraints = QosConstraints::none()
            .with_max_cost(max_cost)
            .with_min_accuracy(min_acc);
        match select(&cands, Objective::MinCost, &constraints) {
            Some(i) => {
                prop_assert!(constraints.admits(&cands[i].profile));
                for c in &cands {
                    if constraints.admits(&c.profile) {
                        prop_assert!(cands[i].profile.cost_per_call <= c.profile.cost_per_call);
                    }
                }
            }
            None => {
                // Nothing was feasible.
                for c in &cands {
                    prop_assert!(!constraints.admits(&c.profile));
                }
            }
        }
    }

    /// optimize_choices output is always in-bounds and feasible.
    #[test]
    fn assignment_is_valid_and_feasible(
        nodes in prop::collection::vec(prop::collection::vec(profile_strategy(), 1..4), 1..6),
        min_acc in 0.0f64..0.5,
    ) {
        let constraints = QosConstraints::none().with_min_accuracy(min_acc);
        if let Some(choice) = optimize_choices(&nodes, Objective::MinCost, &constraints) {
            prop_assert_eq!(choice.len(), nodes.len());
            let mut total = CostProfile::FREE;
            for (n, &c) in nodes.iter().zip(&choice) {
                prop_assert!(c < n.len());
                total = total.then(&n[c]);
            }
            prop_assert!(constraints.admits(&total));
        }
    }

    /// Sequential composition is associative (within float tolerance).
    #[test]
    fn composition_is_associative(a in profile_strategy(), b in profile_strategy(), c in profile_strategy()) {
        let left = a.then(&b).then(&c);
        let right = a.then(&b.then(&c));
        prop_assert!((left.cost_per_call - right.cost_per_call).abs() < 1e-9);
        prop_assert_eq!(left.latency_micros, right.latency_micros);
        prop_assert!((left.accuracy - right.accuracy).abs() < 1e-9);
    }

    /// Budget: spent totals are monotone under charges, and status never
    /// goes back from Exceeded.
    #[test]
    fn budget_monotonicity(charges in prop::collection::vec((0.0f64..2.0, 0u64..10_000, 0.5f64..1.0), 1..20)) {
        let mut budget = Budget::new(QosConstraints::none().with_max_cost(5.0));
        let mut last_spent = 0.0;
        let mut exceeded_seen = false;
        for (cost, latency, acc) in charges {
            budget.charge(cost, latency, acc);
            prop_assert!(budget.spent_cost >= last_spent);
            last_spent = budget.spent_cost;
            let exceeded = budget.status() == blueprint_optimizer::BudgetStatus::Exceeded;
            if exceeded_seen {
                prop_assert!(exceeded, "budget un-exceeded itself");
            }
            exceeded_seen = exceeded;
        }
    }

    /// projected_total always dominates-or-equals actuals on cost/latency.
    #[test]
    fn projection_bounds_actuals(
        spent in prop::collection::vec((0.0f64..2.0, 0u64..10_000, 0.5f64..1.0), 0..10),
        proj in profile_strategy(),
    ) {
        let mut budget = Budget::new(QosConstraints::none());
        for (c, l, a) in spent {
            budget.charge(c, l, a);
        }
        budget.set_projection(&proj);
        let total = budget.projected_total();
        let actual = budget.actual();
        prop_assert!(total.cost_per_call >= actual.cost_per_call - 1e-9);
        prop_assert!(total.latency_micros >= actual.latency_micros);
    }
}
