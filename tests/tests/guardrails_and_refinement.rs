//! Integration: the §III-A guardrail modules and §V-F interactive planning
//! working against the live runtime.

use std::time::Duration;

use blueprint_core::agents::{ExecuteAgent, Inputs};
use blueprint_core::coordinator::Outcome;
use blueprint_core::hrdomain::HrConfig;
use blueprint_core::planner::PlanFeedback;
use blueprint_core::streams::{Selector, StreamId, TagFilter};
use blueprint_core::Blueprint;
use serde_json::json;

const RUNNING_EXAMPLE: &str = "I am looking for a data scientist position in SF bay area.";

fn guarded_blueprint() -> Blueprint {
    Blueprint::builder()
        .with_hr_domain(HrConfig {
            seed: 31,
            jobs: 80,
            applicants: 60,
            companies: 10,
            applications: 150,
        })
        .with_guardrails()
        .build()
        .unwrap()
}

#[test]
fn refined_plan_executes_without_removed_agent() {
    let bp = guarded_blueprint();
    let session = bp.start_session().unwrap();
    let plan = session.plan(RUNNING_EXAMPLE).unwrap();
    let refined = bp
        .task_planner()
        .refine(&plan, &PlanFeedback::RemoveAgent("profiler".into()))
        .unwrap();
    let report = session.execute(&refined).unwrap();
    assert!(report.outcome.succeeded());
    assert!(report.node_results.iter().all(|n| n.agent != "profiler"));
    assert_eq!(report.node_results.len(), 2);
}

#[test]
fn pinned_input_reaches_the_agent() {
    let bp = guarded_blueprint();
    let session = bp.start_session().unwrap();
    let plan = session.plan(RUNNING_EXAMPLE).unwrap();
    let refined = bp
        .task_planner()
        .refine(
            &plan,
            &PlanFeedback::PinInput {
                agent: "job-matcher".into(),
                param: "criteria".into(),
                value: json!("remote only"),
            },
        )
        .unwrap();
    let report = session.execute(&refined).unwrap();
    assert!(report.outcome.succeeded());
    // The instruction stream shows the literal criteria delivered.
    let scope = session.session().scope();
    let instructions = bp
        .store()
        .read(&StreamId::new(format!("{scope}:instructions")), 0)
        .unwrap();
    let matcher_instr = instructions
        .iter()
        .filter_map(|m| ExecuteAgent::from_message(m))
        .find(|e| e.agent == "job-matcher")
        .unwrap();
    assert_eq!(
        matcher_instr.inputs.get("criteria"),
        Some(&json!("remote only"))
    );
}

#[test]
fn moderator_blocks_pii_through_the_stream_path() {
    let bp = guarded_blueprint();
    let session = bp.start_session().unwrap();
    let scope = session.session().scope().to_string();
    let out_sub = bp
        .store()
        .subscribe(
            Selector::Stream(StreamId::new(format!("{scope}:moderation"))),
            TagFilter::all(),
        )
        .unwrap();
    let instr = ExecuteAgent {
        agent: "content-moderator".into(),
        inputs: Inputs::new().with(
            "text",
            json!("please email the candidate's SSN to hr@example.com"),
        ),
        output_stream: format!("{scope}:moderation"),
        task_id: "mod-1".into(),
        node_id: "n1".into(),
        span: None,
    };
    bp.store()
        .publish_to(
            format!("{scope}:instructions"),
            ["instructions"],
            instr.into_message(),
        )
        .unwrap();
    let verdict = out_sub.recv_timeout(Duration::from_secs(10)).unwrap();
    assert_eq!(verdict.payload["allowed"], json!(false));
    let reasons = verdict.payload["reasons"].as_array().unwrap();
    assert!(reasons.len() >= 2); // SSN term + email PII
}

#[test]
fn verifier_checks_summarizer_claims_end_to_end() {
    // Run the decentralized Fig 10 chain, then have the fact-verifier check
    // the produced summary against the SQL rows it summarizes.
    let bp = guarded_blueprint();
    let session = bp.start_session().unwrap();
    let rows_sub = bp
        .store()
        .subscribe(Selector::AllStreams, TagFilter::any_of(["rows"]))
        .unwrap();
    let summary_sub = bp
        .store()
        .subscribe(Selector::AllStreams, TagFilter::any_of(["summary"]))
        .unwrap();
    session.say("How many applicants per city?").unwrap();
    let rows = rows_sub.recv_timeout(Duration::from_secs(15)).unwrap();
    let summary = summary_sub.recv_timeout(Duration::from_secs(15)).unwrap();

    // Drive the verifier with the (claim, rows) pair.
    let scope = session.session().scope().to_string();
    let verdict_sub = bp
        .store()
        .subscribe(
            Selector::Stream(StreamId::new(format!("{scope}:verification"))),
            TagFilter::all(),
        )
        .unwrap();
    let instr = ExecuteAgent {
        agent: "fact-verifier".into(),
        inputs: Inputs::new()
            .with("claim", summary.payload.clone())
            .with("rows", rows.payload.clone()),
        output_stream: format!("{scope}:verification"),
        task_id: "verify-1".into(),
        node_id: "n1".into(),
        span: None,
    };
    bp.store()
        .publish_to(
            format!("{scope}:instructions"),
            ["instructions"],
            instr.into_message(),
        )
        .unwrap();
    let verdict = verdict_sub.recv_timeout(Duration::from_secs(10)).unwrap();
    // The honest summarizer's row-count claim is grounded in the data.
    assert_eq!(
        verdict.payload["supported"],
        json!(true),
        "verifier said: {}",
        verdict.payload["explanation"]
    );
}

#[test]
fn incremental_execution_step_by_step() {
    // Dynamic planning: execute the decomposition one node at a time,
    // deciding after each step whether to continue (§V-F).
    let bp = guarded_blueprint();
    let session = bp.start_session().unwrap();
    let mut completed = 0usize;
    let mut succeeded = 0usize;
    while let Some(step) = bp
        .task_planner()
        .plan_step(RUNNING_EXAMPLE, completed)
        .unwrap()
    {
        let report = session.execute(&step).unwrap();
        if matches!(report.outcome, Outcome::Completed { .. }) {
            succeeded += 1;
        }
        completed += 1;
    }
    assert_eq!(completed, 3);
    assert_eq!(succeeded, 3);
}
