//! End-to-end observability: deterministic traces, hand-countable metrics,
//! and a Chrome export whose span tree matches the plan DAG.

use blueprint_core::observability::{SpanKind, Trace};
use blueprint_core::Blueprint;

const RUNNING_EXAMPLE: &str = "I am looking for a data scientist position in SF bay area.";

/// Boots an armed runtime, drives the running example once, and returns the
/// recorded trace plus the metrics snapshot.
fn traced_run() -> (Trace, blueprint_core::observability::MetricsSnapshot) {
    let bp = Blueprint::builder()
        .with_hr_domain(Default::default())
        .with_tracing()
        .with_metrics()
        .build()
        .unwrap();
    let session = bp.start_session().unwrap();
    let report = session.handle(RUNNING_EXAMPLE).unwrap();
    assert!(report.outcome.succeeded(), "outcome: {:?}", report.outcome);
    (bp.trace(), bp.metrics())
}

#[test]
fn identical_runs_yield_identical_traces() {
    let (a, _) = traced_run();
    let (b, _) = traced_run();
    // Sim-clock stamps make the whole tree byte-stable: same span names,
    // same parentage, same ids, same timestamps.
    assert_eq!(a.spans, b.spans);
    assert_eq!(
        a.to_chrome_json().to_string(),
        b.to_chrome_json().to_string()
    );
}

#[test]
fn trace_tree_matches_plan_dag() {
    let (trace, _) = traced_run();

    // One trace tree per task.
    let roots = trace.roots();
    assert_eq!(roots.len(), 1, "trace:\n{}", trace.render_text());
    let task = roots[0];
    assert!(task.name.starts_with("task:"));
    assert_eq!(task.category, "coordinator");

    // The running example plans a 3-node chain (profiler → job-matcher →
    // presenter): each node span parents the next, and each node span has
    // exactly one invoke child.
    let expected = ["profiler", "job-matcher", "presenter"];
    let mut parent = task.id;
    for (i, agent) in expected.iter().enumerate() {
        let children: Vec<_> = trace
            .children_of(parent)
            .into_iter()
            .filter(|s| s.kind == SpanKind::Span)
            .collect();
        let node = children
            .iter()
            .find(|s| s.name == format!("node:n{}", i + 1))
            .unwrap_or_else(|| panic!("missing node span n{}:\n{}", i + 1, trace.render_text()));
        assert_eq!(node.attrs.get("agent").map(String::as_str), Some(*agent));
        let invoke = trace
            .find(&format!("invoke:{agent}"))
            .unwrap_or_else(|| panic!("missing invoke span for {agent}"));
        assert_eq!(invoke.parent, Some(node.id), "invoke parents its node span");
        assert!(invoke.start_micros >= node.start_micros);
        assert!(invoke.end_micros <= node.end_micros);
        parent = node.id;
    }
}

#[test]
fn chrome_export_mirrors_the_tree() {
    let (trace, _) = traced_run();
    let chrome = trace.to_chrome_json();
    let events = chrome["traceEvents"].as_array().unwrap();
    assert_eq!(events.len(), trace.spans.len());
    // Parentage follows plan-DAG edges, so a child node span may start when
    // its parent node ends; but no child starts before its parent does, and
    // invoke spans nest fully inside their node span.
    for span in &trace.spans {
        let Some(parent_id) = span.parent else {
            continue;
        };
        let parent = trace.spans.iter().find(|s| s.id == parent_id).unwrap();
        assert!(span.start_micros >= parent.start_micros);
        if span.name.starts_with("invoke:") {
            assert!(span.end_micros <= parent.end_micros);
        }
    }
    let task = events
        .iter()
        .find(|e| e["name"].as_str().is_some_and(|n| n.starts_with("task:")))
        .unwrap();
    assert_eq!(task["ph"].as_str(), Some("X"));
    assert!(task["dur"].as_u64().unwrap() > 0);
}

#[test]
fn metrics_match_hand_counts_for_three_node_plan() {
    let (_, snap) = traced_run();
    // The chain plan dispatches each of its 3 nodes exactly once; every
    // dispatch invokes one agent; nothing fails, retries, or memoizes.
    assert_eq!(snap.counter("blueprint.coordinator.dispatches"), 3);
    assert_eq!(snap.counter("blueprint.agents.invocations"), 3);
    assert_eq!(snap.counter("blueprint.agents.failures"), 0);
    assert_eq!(snap.counter("blueprint.coordinator.memo_hits"), 0);
    assert_eq!(snap.counter("blueprint.resilience.retries"), 0);
    // Data access and model calls happened and were metered.
    assert!(snap.counter("blueprint.llmsim.calls") > 0);
    assert!(snap.counter("blueprint.datastore.queries") > 0);
    assert!(snap.counter("blueprint.optimizer.budget_debits") >= 3);
    assert!(snap.counter("blueprint.streams.publishes") > 0);
    // Identical runs meter identically.
    let (_, again) = traced_run();
    assert_eq!(snap.counters, again.counters);
}
