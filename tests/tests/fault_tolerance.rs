//! Integration: reliability behaviors (§VII "Reliability") — panic
//! containment, restart-on-failure, replanning, and timeouts.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

use blueprint_core::agents::{
    AgentContext, AgentSpec, CostProfile, DataType, FnProcessor, Inputs, Outputs, ParamSpec,
    Processor,
};
use blueprint_core::coordinator::{Outcome, TaskCoordinator};
use blueprint_core::llmsim::{ModelProfile, SimLlm};
use blueprint_core::optimizer::QosConstraints;
use blueprint_core::planner::TaskPlanner;
use blueprint_core::registry::AgentRegistry;
use blueprint_core::streams::StreamStore;
use integration_tests::hr_blueprint;
use serde_json::json;

#[test]
fn panicking_agent_does_not_kill_the_runtime() {
    let bp = hr_blueprint();
    let factory = bp.factory();
    // Register a bomb agent alongside the HR suite.
    let spec = AgentSpec::new("bomb", "panics on every input to test containment")
        .with_input(ParamSpec::required("text", "t", DataType::Text))
        .with_profile(CostProfile::new(0.1, 100, 1.0));
    let proc: Arc<dyn Processor> = Arc::new(FnProcessor::new(
        |_: &Inputs, _: &AgentContext| -> blueprint_core::agents::Result<Outputs> {
            panic!("intentional test panic")
        },
    ));
    factory.register(spec.clone(), proc).unwrap();
    bp.agent_registry().register(spec).unwrap();

    let session = bp.start_session().unwrap();
    let scope = session.session().scope().to_string();
    factory.spawn("bomb", &scope).unwrap();

    // Drive the bomb through an explicit plan; the coordinator reports a
    // clean failure and the rest of the session still works.
    let mut plan = blueprint_core::planner::TaskPlan::new("bomb-task", "boom");
    let mut inputs = std::collections::BTreeMap::new();
    inputs.insert(
        "text".to_string(),
        blueprint_core::planner::InputBinding::FromUser,
    );
    plan.push(blueprint_core::planner::PlanNode {
        id: "n1".into(),
        agent: "bomb".into(),
        task: "explode".into(),
        inputs,
        profile: CostProfile::new(0.1, 100, 1.0),
    });
    let report = session.execute(&plan).unwrap();
    // Either a clean failure, or — since the registry now contains a
    // conversational fallback agent — a replan around the bomb. Never a
    // crash, and the bomb never "succeeds".
    match &report.outcome {
        Outcome::Failed { node, .. } => assert_eq!(node, "n1"),
        Outcome::Replanned { reason, inner } => {
            assert!(reason.contains("bomb"));
            assert!(inner.node_results.iter().all(|n| n.agent != "bomb"));
        }
        other => panic!("unexpected outcome: {other:?}"),
    }

    // The session still completes normal work afterwards.
    let ok = session
        .handle("I am looking for a data scientist position in SF bay area.")
        .unwrap();
    assert!(ok.outcome.succeeded());
}

#[test]
fn flaky_agent_is_replanned_around() {
    // Two interchangeable services; the first fails a few times. The
    // coordinator replans onto the backup and the task still succeeds.
    let store = StreamStore::new();
    let factory = blueprint_core::agents::AgentFactory::new(store.clone());
    let registry = Arc::new(AgentRegistry::new());

    let failures = Arc::new(AtomicU32::new(0));
    let flaky_failures = Arc::clone(&failures);
    let flaky_spec = AgentSpec::new("flaky-renderer", "render content into display text")
        .with_input(ParamSpec::required("content", "c", DataType::Any))
        .with_output(ParamSpec::required("rendered", "r", DataType::Text))
        .with_profile(CostProfile::new(0.1, 100, 0.9));
    let flaky_proc: Arc<dyn Processor> = Arc::new(FnProcessor::new(
        move |_: &Inputs, _: &AgentContext| -> blueprint_core::agents::Result<Outputs> {
            flaky_failures.fetch_add(1, Ordering::Relaxed);
            Err(blueprint_core::agents::AgentError::ProcessorFailed(
                "render backend down".into(),
            ))
        },
    ));
    factory.register(flaky_spec.clone(), flaky_proc).unwrap();
    registry.register(flaky_spec).unwrap();

    let good_spec = AgentSpec::new("stable-renderer", "render content into display text")
        .with_input(ParamSpec::required("content", "c", DataType::Any))
        .with_output(ParamSpec::required("rendered", "r", DataType::Text))
        .with_profile(CostProfile::new(0.1, 100, 0.9));
    let good_proc: Arc<dyn Processor> =
        Arc::new(FnProcessor::new(|inputs: &Inputs, _: &AgentContext| {
            Ok(Outputs::new().with("rendered", json!(inputs.require("content")?.to_string())))
        }));
    factory.register(good_spec.clone(), good_proc).unwrap();
    registry.register(good_spec).unwrap();

    factory.spawn("flaky-renderer", "session:1").unwrap();
    factory.spawn("stable-renderer", "session:1").unwrap();

    // Bias planning toward the flaky agent.
    registry
        .record_usage("flaky-renderer", "render content into display text")
        .unwrap();

    let llm = Arc::new(SimLlm::new(ModelProfile::large()));
    let planner = Arc::new(TaskPlanner::new(Arc::clone(&registry), llm));
    let coordinator = TaskCoordinator::new(store, "session:1", registry)
        .with_task_planner(Arc::clone(&planner))
        .with_report_timeout(Duration::from_secs(5));

    let plan = planner
        .plan_subtasks(
            "show me the results",
            &["render content into display text".to_string()],
            &[],
        )
        .unwrap();
    assert_eq!(plan.nodes[0].agent, "flaky-renderer");
    let report = coordinator.execute(&plan, QosConstraints::none()).unwrap();
    assert!(report.outcome.succeeded());
    match &report.outcome {
        Outcome::Replanned { inner, .. } => {
            assert_eq!(inner.node_results[0].agent, "stable-renderer");
        }
        other => panic!("expected replan, got {other:?}"),
    }
    assert_eq!(failures.load(Ordering::Relaxed), 1);
}

#[test]
fn factory_restart_resets_instance_state() {
    let bp = hr_blueprint();
    let session = bp.start_session().unwrap();
    let scope = session.session().scope().to_string();
    let id = bp.factory().spawn("profiler", &scope).unwrap();
    let new_id = bp.factory().restart(id).unwrap();
    assert_ne!(id, new_id);
    // The restarted instance serves inline execution.
    let out = bp
        .factory()
        .with_instance(new_id, |h| {
            h.host()
                .execute_now(Inputs::new().with("text", json!("data scientist in oakland")))
        })
        .unwrap()
        .unwrap();
    assert_eq!(
        out.get("profile").unwrap()["title"],
        json!("data scientist")
    );
}

#[test]
fn timeout_on_unresponsive_agent_is_a_clean_failure() {
    let bp = hr_blueprint();
    let session = bp.start_session().unwrap();
    // A plan naming an agent that is registered nowhere: no host answers.
    let mut plan = blueprint_core::planner::TaskPlan::new("ghost-task", "hello");
    let mut inputs = std::collections::BTreeMap::new();
    inputs.insert(
        "text".to_string(),
        blueprint_core::planner::InputBinding::FromUser,
    );
    plan.push(blueprint_core::planner::PlanNode {
        id: "n1".into(),
        agent: "ghost".into(),
        task: "haunt".into(),
        inputs,
        profile: CostProfile::FREE,
    });
    let coordinator = TaskCoordinator::new(
        bp.store().clone(),
        session.session().scope(),
        Arc::clone(bp.agent_registry()),
    )
    .with_report_timeout(Duration::from_millis(300));
    let report = coordinator.execute(&plan, QosConstraints::none()).unwrap();
    match report.outcome {
        Outcome::Failed { node, error } => {
            assert_eq!(node, "n1");
            assert!(error.contains("timed out"));
        }
        other => panic!("unexpected: {other:?}"),
    }
}
