//! Golden pinned-seed serving run: 16 concurrent sessions replay a mixed
//! workload (job-search flows, NL2SQL questions, chat turns) through the
//! [`ServingRuntime`]'s shared agent pool, and the test pins down
//!
//! * per-session reports — every task completes, labels in submission order,
//!   and sessions with identical scripts produce byte-identical outputs;
//! * fair dispatch — the router's global dispatch log never lets one session
//!   run far ahead of another;
//! * the metrics snapshot — dispatch/invocation/latency-record totals match
//!   hand-counted expectations derived from the pinned workload.

use blueprint_core::session::Disposition;
use blueprint_core::Blueprint;
use integration_tests::small_hr;

const SEED: u64 = 0x00B1_EED0_5EED;
const SESSIONS: usize = 16;
const TASKS_PER_SESSION: usize = 3;
const MAX_IN_FLIGHT: usize = 4;

/// The mixed workload: utterance + the node count of the plan the task
/// planner produces for it (hand-counted from `TaskPlanner::decompose`).
const MIX: [(&str, u64); 3] = [
    // JobSearch: profile -> match -> present.
    (
        "I am looking for a data scientist position in SF bay area.",
        3,
    ),
    // OpenEndedQuery: translate -> execute -> summarize.
    ("How many applicants per city?", 3),
    // Greeting: one conversational node.
    ("hello there!", 1),
];

/// Tiny deterministic generator (xorshift64*) so the workload is pinned
/// without pulling a rand dependency into the integration tests.
struct Pinned(u64);

impl Pinned {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// `scripts[s][t]` is the MIX index of session `s`'s `t`-th task — a pure
/// function of the pinned seed.
fn scripts() -> Vec<Vec<usize>> {
    (0..SESSIONS)
        .map(|s| {
            let mut rng = Pinned(SEED ^ (s as u64 + 1).wrapping_mul(0x9E37_79B9));
            (0..TASKS_PER_SESSION)
                .map(|_| (rng.next() % MIX.len() as u64) as usize)
                .collect()
        })
        .collect()
}

#[test]
fn pinned_seed_16_session_mixed_workload_is_deterministic_and_fair() {
    let bp = Blueprint::builder()
        .with_hr_domain(small_hr())
        .with_serving(SESSIONS, MAX_IN_FLIGHT)
        .with_metrics()
        .build()
        .unwrap();
    let serving = bp.serving().unwrap();
    let scripts = scripts();

    let ids: Vec<u64> = (0..SESSIONS)
        .map(|_| serving.open_session().unwrap())
        .collect();
    // Interleaved submission: turn 0 of every session, then turn 1, ...
    let mut labels: Vec<Vec<String>> = vec![Vec::new(); SESSIONS];
    for turn in 0..TASKS_PER_SESSION {
        for (s, &id) in ids.iter().enumerate() {
            let utterance = MIX[scripts[s][turn]].0;
            labels[s].push(serving.submit(id, utterance).unwrap());
        }
    }
    serving.await_idle();

    // --- Fair dispatch: at every prefix of the global dispatch log, no
    // session is more than `1 + MAX_IN_FLIGHT` tasks ahead of another
    // (round-robin lanes; a laggard can only be absent from the ready queue
    // while one of its tasks occupies a worker).
    let log = serving.router().dispatch_log();
    assert_eq!(log.len(), SESSIONS * TASKS_PER_SESSION);
    let mut counts = vec![0usize; SESSIONS];
    let index_of: std::collections::HashMap<u64, usize> =
        ids.iter().enumerate().map(|(i, &id)| (id, i)).collect();
    for record in &log {
        counts[index_of[&record.session]] += 1;
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(
            max - min <= 1 + MAX_IN_FLIGHT,
            "unfair dispatch: counts {counts:?}"
        );
    }

    // --- Per-session reports: everything completed, labels in submission
    // order, and equal scripts produce byte-identical output sequences.
    let mut outputs_by_script: std::collections::HashMap<Vec<usize>, Vec<String>> =
        std::collections::HashMap::new();
    for (s, &id) in ids.iter().enumerate() {
        let report = serving.finish(id).unwrap();
        assert_eq!(report.session, id);
        assert_eq!(report.rejected, 0);
        assert_eq!(report.completions.len(), TASKS_PER_SESSION, "session {s}");
        let mut rendered = Vec::new();
        for (t, c) in report.completions.iter().enumerate() {
            assert_eq!(c.label, labels[s][t], "session {s} task order");
            assert!(
                matches!(c.disposition, Disposition::Completed),
                "session {s} task {t}: {:?}",
                c.output
            );
            rendered.push(serde_json::to_string(&c.output).unwrap());
        }
        // Job-search turns render the matched-jobs presentation.
        for (t, &m) in scripts[s].iter().enumerate() {
            if m == 0 {
                assert!(
                    rendered[t].contains("item(s)"),
                    "session {s} task {t}: {}",
                    rendered[t]
                );
            }
        }
        match outputs_by_script.get(&scripts[s]) {
            None => {
                outputs_by_script.insert(scripts[s].clone(), rendered);
            }
            Some(prior) => assert_eq!(
                prior, &rendered,
                "sessions with script {:?} diverged",
                scripts[s]
            ),
        }
    }

    // --- Metrics snapshot vs hand-counted totals.
    let total_tasks = (SESSIONS * TASKS_PER_SESSION) as u64;
    let expected_invocations: u64 = scripts.iter().flatten().map(|&m| MIX[m].1).sum();
    let snap = bp.metrics();
    assert_eq!(snap.counter("blueprint.session.dispatches"), total_tasks);
    assert_eq!(snap.counter("blueprint.session.rejections"), 0);
    assert_eq!(
        snap.counter("blueprint.agents.invocations"),
        expected_invocations
    );
    assert_eq!(
        snap.counter("blueprint.coordinator.dispatches"),
        expected_invocations
    );
    assert_eq!(
        snap.histograms["blueprint.session.task_latency_micros"].count,
        total_tasks
    );
    assert_eq!(snap.gauge("blueprint.session.active"), 0);
    assert_eq!(snap.gauge("blueprint.session.queue_depth"), 0);
}

#[test]
fn serving_reports_are_stable_across_identical_runs() {
    // The whole run (not just within-run sessions) is a function of the
    // pinned seed: two fresh blueprints over the same HR config and scripts
    // produce identical per-session output sequences.
    let run = || {
        let bp = Blueprint::builder()
            .with_hr_domain(small_hr())
            .with_serving(SESSIONS, MAX_IN_FLIGHT)
            .build()
            .unwrap();
        let serving = bp.serving().unwrap();
        let scripts = scripts();
        let ids: Vec<u64> = (0..SESSIONS)
            .map(|_| serving.open_session().unwrap())
            .collect();
        for turn in 0..TASKS_PER_SESSION {
            for (s, &id) in ids.iter().enumerate() {
                serving.submit(id, MIX[scripts[s][turn]].0).unwrap();
            }
        }
        serving.await_idle();
        ids.iter()
            .map(|&id| {
                serving
                    .finish(id)
                    .unwrap()
                    .completions
                    .iter()
                    .map(|c| serde_json::to_string(&c.output).unwrap())
                    .collect::<Vec<_>>()
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}
