//! Cross-crate integration: the full runtime driving both scenarios.

use std::time::Duration;

use blueprint_core::agents::UiForm;
use blueprint_core::coordinator::Outcome;
use blueprint_core::llmsim::ModelProfile;
use blueprint_core::optimizer::{Objective, QosConstraints};
use blueprint_core::streams::{Selector, TagFilter};
use blueprint_core::Blueprint;
use integration_tests::{hr_blueprint, small_hr};
use serde_json::json;

const RUNNING_EXAMPLE: &str = "I am looking for a data scientist position in SF bay area.";

#[test]
fn career_assistance_scenario_end_to_end() {
    let bp = hr_blueprint();
    let session = bp.start_session().unwrap();
    let report = session.handle(RUNNING_EXAMPLE).unwrap();
    assert!(report.outcome.succeeded());
    let Outcome::Completed { output } = &report.outcome else {
        panic!("expected completion: {:?}", report.outcome);
    };
    // The presenter rendered the matched jobs.
    let rendered = output["rendered"].as_str().unwrap();
    assert!(rendered.contains("item(s)"));
    // All three Fig 6 agents ran, in order.
    let agents: Vec<&str> = report
        .node_results
        .iter()
        .map(|n| n.agent.as_str())
        .collect();
    assert_eq!(agents, ["profiler", "job-matcher", "presenter"]);
}

#[test]
fn agentic_employer_ui_flow_fig9() {
    let bp = hr_blueprint();
    let session = bp.start_session().unwrap();
    let summary_sub = bp
        .store()
        .subscribe(Selector::AllStreams, TagFilter::any_of(["summary"]))
        .unwrap();
    let form = UiForm::new("applicants", "Applicants");
    session.click(&form, "job", json!(2)).unwrap();
    let summary = summary_sub.recv_timeout(Duration::from_secs(15)).unwrap();
    assert!(summary.payload.as_str().unwrap().starts_with("Job 2:"));
}

#[test]
fn agentic_employer_conversation_flow_fig10() {
    let bp = hr_blueprint();
    let session = bp.start_session().unwrap();
    let summary_sub = bp
        .store()
        .subscribe(Selector::AllStreams, TagFilter::any_of(["summary"]))
        .unwrap();
    session.say("How many applicants per city?").unwrap();
    let summary = summary_sub.recv_timeout(Duration::from_secs(15)).unwrap();
    let text = summary.payload.as_str().unwrap();
    assert!(text.contains("row"));
    // The flow passed through the expected participants.
    let participants = bp.store().monitor().participants();
    for expected in [
        "user",
        "intent-classifier",
        "agentic-employer",
        "nl2q",
        "sql-executor",
        "query-summarizer",
    ] {
        assert!(
            participants.iter().any(|p| p == expected),
            "missing participant {expected}; saw {participants:?}"
        );
    }
}

#[test]
fn flow_trace_is_replayable_from_streams() {
    // Every exchange is persisted: replaying the store's streams
    // reconstructs the workflow without the monitor.
    let bp = hr_blueprint();
    let session = bp.start_session().unwrap();
    session.handle(RUNNING_EXAMPLE).unwrap();
    let scope = session.session().scope().to_string();
    let streams = bp.store().list_streams(Some(&scope));
    assert!(streams.iter().any(|s| s.as_str().contains(":instructions")));
    assert!(streams.iter().any(|s| s.as_str().contains(":reports")));
    // The instruction stream replays the exact agent sequence.
    let instructions = bp
        .store()
        .read(&format!("{scope}:instructions").into(), 0)
        .unwrap();
    let agents: Vec<String> = instructions
        .iter()
        .filter_map(|m| blueprint_core::agents::ExecuteAgent::from_message(m))
        .map(|e| e.agent)
        .collect();
    assert_eq!(agents, ["profiler", "job-matcher", "presenter"]);
}

#[test]
fn budget_is_charged_across_agents_and_data_plans() {
    let bp = hr_blueprint();
    let session = bp.start_session().unwrap();
    let report = session.handle(RUNNING_EXAMPLE).unwrap();
    // Agent charges: profiler (llm extract) + matcher (per-job) + presenter.
    // Data-plan charges: parametric knowledge for the region.
    assert!(
        report.budget.spent_cost > 0.3,
        "spent {}",
        report.budget.spent_cost
    );
    assert!(report.budget.spent_latency_micros > 100_000);
    // Per-node records agree with the ledger within the data-plan share.
    let node_cost: f64 = report.node_results.iter().map(|n| n.cost).sum();
    assert!(report.budget.spent_cost >= node_cost);
}

#[test]
fn tight_budget_aborts_and_loose_budget_completes() {
    let tight = Blueprint::builder()
        .with_hr_domain(small_hr())
        .with_constraints(QosConstraints::none().with_max_cost(0.01))
        .build()
        .unwrap();
    let report = tight
        .start_session()
        .unwrap()
        .handle(RUNNING_EXAMPLE)
        .unwrap();
    assert!(matches!(report.outcome, Outcome::Aborted { .. }));

    let loose = Blueprint::builder()
        .with_hr_domain(small_hr())
        .with_constraints(QosConstraints::none().with_max_cost(100.0))
        .build()
        .unwrap();
    let report = loose
        .start_session()
        .unwrap()
        .handle(RUNNING_EXAMPLE)
        .unwrap();
    assert!(report.outcome.succeeded());
}

#[test]
fn objective_changes_tier_choice_in_data_plans() {
    let bp = Blueprint::builder()
        .with_hr_domain(small_hr())
        .with_model(ModelProfile::large())
        .with_extra_model(ModelProfile::tiny())
        .with_objective(Objective::MinCost)
        .build()
        .unwrap();
    let plan = bp.data_planner().plan_job_query(RUNNING_EXAMPLE).unwrap();
    let text = plan.render_text();
    // Cost-min picks the tiny tier for the knowledge lookup.
    assert!(text.contains("knowledge[gpt-tiny]"), "{text}");
}

#[test]
fn sessions_do_not_interfere() {
    let bp = hr_blueprint();
    let s1 = bp.start_session().unwrap();
    let s2 = bp.start_session().unwrap();
    let r1 = s1.handle(RUNNING_EXAMPLE).unwrap();
    let r2 = s2
        .handle("I am looking for a machine learning engineer position in oakland.")
        .unwrap();
    assert!(r1.outcome.succeeded());
    assert!(r2.outcome.succeeded());
    // Streams of each session stay under their scope.
    let s1_streams = bp.store().list_streams(Some(s1.session().scope()));
    assert!(s1_streams
        .iter()
        .all(|s| s.is_scoped_under(s1.session().scope())));
}

#[test]
fn plans_execute_exactly_once_with_concurrent_sessions() {
    // Two live sessions each have a coordinator daemon; a plan emitted in
    // session A must be executed by A's daemon only (no double execution).
    let bp = hr_blueprint();
    let s1 = bp.start_session().unwrap();
    let s2 = bp.start_session().unwrap();
    let form = UiForm::new("applicants", "Applicants");
    let status_sub = bp
        .store()
        .subscribe(Selector::AllStreams, TagFilter::any_of(["task-status"]))
        .unwrap();
    s1.click(&form, "job", json!(1)).unwrap();
    status_sub.recv_timeout(Duration::from_secs(15)).unwrap();
    // Give any (incorrect) second execution time to surface.
    std::thread::sleep(Duration::from_millis(200));
    assert_eq!(s1.plans_executed(), 1);
    assert_eq!(s2.plans_executed(), 0);
    // Exactly one completion status exists.
    assert!(status_sub.drain().is_empty());
}

#[test]
fn registry_usage_grows_with_planning() {
    let bp = hr_blueprint();
    let session = bp.start_session().unwrap();
    let before = bp.agent_registry().get("job-matcher").unwrap().usage_count;
    session.handle(RUNNING_EXAMPLE).unwrap();
    session.handle(RUNNING_EXAMPLE).unwrap();
    let after = bp.agent_registry().get("job-matcher").unwrap().usage_count;
    assert_eq!(after, before + 2);
}

#[test]
fn greeting_is_answered_by_the_responder() {
    let bp = hr_blueprint();
    let session = bp.start_session().unwrap();
    let report = session.handle("hello there!").unwrap();
    assert!(report.outcome.succeeded());
    let Outcome::Completed { output } = &report.outcome else {
        panic!("expected completion: {:?}", report.outcome)
    };
    assert!(output["reply"].as_str().unwrap().starts_with("Hello!"));
    assert_eq!(report.node_results[0].agent, "responder");
}

#[test]
fn deterministic_across_runs() {
    // Two identical blueprints produce identical plan structures and
    // identical matched-job sets for the running example.
    let run = || {
        let bp = hr_blueprint();
        let session = bp.start_session().unwrap();
        let plan = session.plan(RUNNING_EXAMPLE).unwrap().render_text();
        let dp = bp.data_planner().plan_job_query(RUNNING_EXAMPLE).unwrap();
        let rows = bp.data_planner().execute(&dp).unwrap().value;
        (plan, rows)
    };
    let (plan_a, rows_a) = run();
    let (plan_b, rows_b) = run();
    assert_eq!(plan_a, plan_b);
    assert_eq!(rows_a, rows_b);
}
