//! Chaos suite: the Fig 8 (centralized) and Fig 10 (decentralized) flows
//! under deterministic seeded fault injection.
//!
//! Every scenario must reach a terminal state — completed, aborted,
//! replanned to completion, or failed with the offending instruction
//! quarantined on the dead-letter stream — and must never hang: each run
//! executes under a hard watchdog timeout on a separate thread.
//!
//! Seeds come from `CHAOS_SEEDS` (space-separated) when set, so CI can pin
//! a few fixed seeds while the default suite sweeps a wider set.

use std::sync::mpsc::RecvTimeoutError;
use std::time::Duration;

use blueprint_core::coordinator::{ExecutionReport, Outcome, SchedulerMode};
use blueprint_core::resilience::{BreakerConfig, FaultPlan, RetryPolicy};
use blueprint_core::session::Disposition;
use blueprint_core::streams::{DeadLetterQueue, Selector, TagFilter};
use blueprint_core::{Blueprint, CoreError};
use integration_tests::small_hr;

const RUNNING_EXAMPLE: &str = "I am looking for a data scientist position in SF bay area.";

/// Default seed sweep (~10 fault plans); override with `CHAOS_SEEDS="7 21 42"`.
fn chaos_seeds() -> Vec<u64> {
    if let Ok(raw) = std::env::var("CHAOS_SEEDS") {
        let seeds: Vec<u64> = raw
            .split_whitespace()
            .filter_map(|s| s.parse().ok())
            .collect();
        if !seeds.is_empty() {
            return seeds;
        }
    }
    vec![1, 2, 3, 5, 8, 13, 21, 34, 55, 89]
}

/// Runs `f` on its own thread and panics if it has not finished (or
/// panicked) within `timeout` — the suite's "never hangs" guarantee.
fn with_watchdog<F>(label: String, timeout: Duration, f: F)
where
    F: FnOnce() + Send + 'static,
{
    let (tx, rx) = std::sync::mpsc::channel();
    let handle = std::thread::spawn(move || {
        f();
        let _ = tx.send(());
    });
    match rx.recv_timeout(timeout) {
        Ok(()) | Err(RecvTimeoutError::Disconnected) => {
            // Finished or panicked: join to propagate any panic.
            if let Err(e) = handle.join() {
                std::panic::resume_unwind(e);
            }
        }
        Err(RecvTimeoutError::Timeout) => {
            panic!("chaos scenario `{label}` hung past {timeout:?}");
        }
    }
}

fn chaotic_blueprint(seed: u64, scheduler: SchedulerMode) -> Blueprint {
    Blueprint::builder()
        .with_hr_domain(small_hr())
        .with_fault_plan(FaultPlan::chaotic(seed))
        .with_retry_policy(RetryPolicy::standard(seed))
        .with_circuit_breakers(BreakerConfig::default())
        .with_report_timeout(Duration::from_millis(800))
        .with_scheduler(scheduler)
        .build()
        .expect("chaotic blueprint assembles")
}

/// A failed node that actually reached an agent must leave a quarantined
/// dead-letter behind; input-resolution failures never issued an
/// instruction, so there is nothing to quarantine.
fn assert_report_terminal(bp: &Blueprint, scope: &str, report: &ExecutionReport) {
    match &report.outcome {
        Outcome::Completed { .. } | Outcome::Aborted { .. } => {}
        Outcome::Replanned { inner, .. } => assert_report_terminal(bp, scope, inner),
        Outcome::Failed { node, .. } => {
            let attempted = report.node_results.iter().any(|n| n.node == *node && !n.ok);
            if attempted {
                let dlq = DeadLetterQueue::for_scope(bp.store(), scope)
                    .expect("dead-letter stream exists");
                assert!(
                    !dlq.is_empty().unwrap(),
                    "failed node {node} exhausted its attempts without being quarantined"
                );
            }
        }
    }
}

fn assert_terminal(bp: &Blueprint, scope: &str, result: Result<ExecutionReport, CoreError>) {
    match result {
        // Planning itself may trip over an injected model fault; an error
        // return is a legitimate terminal state, not a hang.
        Err(_) => {}
        Ok(report) => assert_report_terminal(bp, scope, &report),
    }
}

#[test]
fn centralized_flow_reaches_terminal_state_under_chaos() {
    for seed in chaos_seeds() {
        with_watchdog(
            format!("centralized seed {seed}"),
            Duration::from_secs(60),
            move || {
                let bp = chaotic_blueprint(seed, SchedulerMode::Sequential);
                let session = bp.start_session().expect("session starts");
                let scope = session.session().scope().to_string();
                let result = session.handle(RUNNING_EXAMPLE);
                assert_terminal(&bp, &scope, result);
            },
        );
    }
}

#[test]
fn centralized_flow_reaches_terminal_state_under_parallel_scheduler() {
    // The same seeded fault plans, but with the ready-set scheduler
    // dispatching every satisfied node concurrently: the complete-or-
    // quarantined invariant must hold regardless of completion order.
    for seed in chaos_seeds() {
        with_watchdog(
            format!("parallel centralized seed {seed}"),
            Duration::from_secs(60),
            move || {
                let bp = chaotic_blueprint(seed, SchedulerMode::Parallel { max_in_flight: 0 });
                let session = bp.start_session().expect("session starts");
                let scope = session.session().scope().to_string();
                let result = session.handle(RUNNING_EXAMPLE);
                assert_terminal(&bp, &scope, result);
            },
        );
    }
}

#[test]
fn decentralized_flow_never_hangs_under_chaos() {
    for seed in chaos_seeds() {
        with_watchdog(
            format!("decentralized seed {seed}"),
            Duration::from_secs(60),
            move || {
                let bp = chaotic_blueprint(seed, SchedulerMode::Parallel { max_in_flight: 0 });
                let session = bp.start_session().expect("session starts");
                let sub = bp
                    .store()
                    .subscribe(Selector::AllStreams, TagFilter::any_of(["summary"]))
                    .unwrap();
                session.say("How many applicants per city?").unwrap();
                // Bounded wait: either the agent chain completes, or an
                // injected fault (dropped message, panic, model failure)
                // legitimately broke the chain.
                let outcome = sub.recv_timeout(Duration::from_secs(10));
                if outcome.is_err() {
                    let injected = bp
                        .fault_injector()
                        .map(|inj| inj.total())
                        .unwrap_or_default();
                    assert!(
                        injected > 0,
                        "seed {seed}: conversation stalled with no fault injected"
                    );
                }
            },
        );
    }
}

/// Classifies one serving completion as `(attempted_failure, fault_path)`.
///
/// `attempted_failure`: the (possibly replanned) outcome ended in a node
/// failure that actually reached an agent — the complete-or-quarantined rule
/// then requires a dead-letter in the session's own scope.
/// `fault_path`: the task failed, aborted, errored, or replanned at all, so
/// quarantined entries in its scope are legitimate. A task that avoids every
/// fault path can never have quarantined anything (the coordinator only
/// completes when no node failed), which is what makes the sibling-poisoning
/// check below sound.
fn audit_completion(disposition: &Disposition, output: &serde_json::Value) -> (bool, bool) {
    fn walk(output: &serde_json::Value) -> (bool, bool) {
        if let Some(obj) = output.as_object() {
            if obj.contains_key("replanned") && obj.contains_key("outcome") {
                let (attempted, _) = walk(&obj["outcome"]);
                return (attempted, true);
            }
            if obj.contains_key("failed") {
                let attempted = obj
                    .get("attempted")
                    .and_then(|v| v.as_bool())
                    .unwrap_or(false);
                return (attempted, true);
            }
        }
        (false, false)
    }
    let (attempted, mut fault_path) = walk(output);
    fault_path |= !matches!(disposition, Disposition::Completed);
    (attempted, fault_path)
}

#[test]
fn serving_sessions_contain_chaos_without_poisoning_siblings() {
    // The chaos harness pointed at the serving runtime: several concurrent
    // sessions share one agent pool while seeded faults fire. Per session,
    // every submitted task must reach a terminal completion record that is
    // complete-or-quarantined in that session's OWN scope, and a session
    // whose tasks all stayed on the happy path must end with an empty
    // dead-letter stream — a faulted sibling never poisons it.
    const SESSIONS: usize = 3;
    const TASKS: usize = 2;
    for seed in chaos_seeds() {
        with_watchdog(
            format!("serving seed {seed}"),
            Duration::from_secs(120),
            move || {
                let bp = Blueprint::builder()
                    .with_hr_domain(small_hr())
                    .with_fault_plan(FaultPlan::chaotic(seed))
                    .with_retry_policy(RetryPolicy::standard(seed))
                    .with_circuit_breakers(BreakerConfig::default())
                    .with_report_timeout(Duration::from_millis(800))
                    .with_serving(SESSIONS, 2)
                    .build()
                    .expect("chaotic serving blueprint assembles");
                let serving = bp.serving().expect("serving runtime starts");
                let ids: Vec<u64> = (0..SESSIONS)
                    .map(|_| serving.open_session().expect("session opens"))
                    .collect();
                let scopes: Vec<String> = ids
                    .iter()
                    .map(|&id| serving.session_scope(id).unwrap())
                    .collect();
                let mut submitted = [0usize; SESSIONS];
                for _turn in 0..TASKS {
                    for (s, &id) in ids.iter().enumerate() {
                        // Planning may trip an injected model fault; an Err
                        // enqueues nothing and is a legitimate terminal
                        // state, mirroring `assert_terminal` above.
                        if serving.submit(id, RUNNING_EXAMPLE).is_ok() {
                            submitted[s] += 1;
                        }
                    }
                }
                serving.await_idle();

                for (s, &id) in ids.iter().enumerate() {
                    // Audit quarantine BEFORE finish(): finishing a session
                    // reaps its scope, dead-letters included.
                    let quarantined = DeadLetterQueue::for_scope(bp.store(), &scopes[s])
                        .expect("dead-letter stream")
                        .len()
                        .unwrap();
                    let report = serving.finish(id).expect("session closes");
                    assert_eq!(report.rejected, 0, "seed {seed} session {s}");
                    assert_eq!(
                        report.completions.len(),
                        submitted[s],
                        "seed {seed} session {s} lost tasks"
                    );
                    let mut fault_path = false;
                    for c in &report.completions {
                        let (attempted_failure, faulted) =
                            audit_completion(&c.disposition, &c.output);
                        fault_path |= faulted;
                        if attempted_failure {
                            assert!(
                                quarantined > 0,
                                "seed {seed} session {s}: attempted failure \
                                 without quarantine: {:?}",
                                c.output
                            );
                        }
                    }
                    if !fault_path {
                        assert_eq!(
                            quarantined, 0,
                            "seed {seed} session {s}: clean session poisoned by a sibling"
                        );
                    }
                }
            },
        );
    }
}

#[test]
fn fault_free_serving_run_completes_every_session() {
    // Serving control group: with a zero-rate fault plan the same
    // multi-session harness completes every task of every session with
    // nothing quarantined anywhere.
    const SESSIONS: usize = 3;
    const TASKS: usize = 2;
    with_watchdog(
        "serving control run".to_string(),
        Duration::from_secs(60),
        || {
            let bp = Blueprint::builder()
                .with_hr_domain(small_hr())
                .with_fault_plan(FaultPlan::none(0))
                .with_retry_policy(RetryPolicy::standard(0))
                .with_circuit_breakers(BreakerConfig::default())
                .with_serving(SESSIONS, 2)
                .build()
                .unwrap();
            let serving = bp.serving().unwrap();
            let ids: Vec<u64> = (0..SESSIONS)
                .map(|_| serving.open_session().unwrap())
                .collect();
            let scopes: Vec<String> = ids
                .iter()
                .map(|&id| serving.session_scope(id).unwrap())
                .collect();
            for _turn in 0..TASKS {
                for &id in &ids {
                    serving.submit(id, RUNNING_EXAMPLE).unwrap();
                }
            }
            serving.await_idle();
            for (s, &id) in ids.iter().enumerate() {
                let quarantined = DeadLetterQueue::for_scope(bp.store(), &scopes[s])
                    .unwrap()
                    .len()
                    .unwrap();
                assert_eq!(quarantined, 0, "session {s}");
                let report = serving.finish(id).unwrap();
                assert_eq!(report.completions.len(), TASKS);
                for c in &report.completions {
                    assert!(
                        matches!(c.disposition, Disposition::Completed),
                        "session {s}: {:?}",
                        c.output
                    );
                }
            }
            assert_eq!(bp.fault_injector().unwrap().total(), 0);
        },
    );
}

#[test]
fn fault_free_plan_under_same_harness_always_completes() {
    // Control group: the same harness with a zero-rate fault plan must
    // complete both flows — proves the chaos failures above come from the
    // injected faults, not the resilience machinery itself.
    with_watchdog("control run".to_string(), Duration::from_secs(60), || {
        let bp = Blueprint::builder()
            .with_hr_domain(small_hr())
            .with_fault_plan(FaultPlan::none(0))
            .with_retry_policy(RetryPolicy::standard(0))
            .with_circuit_breakers(BreakerConfig::default())
            .build()
            .unwrap();
        let session = bp.start_session().unwrap();
        let report = session.handle(RUNNING_EXAMPLE).unwrap();
        assert!(report.outcome.succeeded(), "outcome: {:?}", report.outcome);
        assert_eq!(bp.fault_injector().unwrap().total(), 0);
    });
}
