//! Chaos suite: the Fig 8 (centralized) and Fig 10 (decentralized) flows
//! under deterministic seeded fault injection.
//!
//! Every scenario must reach a terminal state — completed, aborted,
//! replanned to completion, or failed with the offending instruction
//! quarantined on the dead-letter stream — and must never hang: each run
//! executes under a hard watchdog timeout on a separate thread.
//!
//! Seeds come from `CHAOS_SEEDS` (space-separated) when set, so CI can pin
//! a few fixed seeds while the default suite sweeps a wider set.

use std::sync::mpsc::RecvTimeoutError;
use std::time::Duration;

use blueprint_core::coordinator::{ExecutionReport, Outcome, SchedulerMode};
use blueprint_core::resilience::{BreakerConfig, FaultPlan, RetryPolicy};
use blueprint_core::streams::{DeadLetterQueue, Selector, TagFilter};
use blueprint_core::{Blueprint, CoreError};
use integration_tests::small_hr;

const RUNNING_EXAMPLE: &str = "I am looking for a data scientist position in SF bay area.";

/// Default seed sweep (~10 fault plans); override with `CHAOS_SEEDS="7 21 42"`.
fn chaos_seeds() -> Vec<u64> {
    if let Ok(raw) = std::env::var("CHAOS_SEEDS") {
        let seeds: Vec<u64> = raw
            .split_whitespace()
            .filter_map(|s| s.parse().ok())
            .collect();
        if !seeds.is_empty() {
            return seeds;
        }
    }
    vec![1, 2, 3, 5, 8, 13, 21, 34, 55, 89]
}

/// Runs `f` on its own thread and panics if it has not finished (or
/// panicked) within `timeout` — the suite's "never hangs" guarantee.
fn with_watchdog<F>(label: String, timeout: Duration, f: F)
where
    F: FnOnce() + Send + 'static,
{
    let (tx, rx) = std::sync::mpsc::channel();
    let handle = std::thread::spawn(move || {
        f();
        let _ = tx.send(());
    });
    match rx.recv_timeout(timeout) {
        Ok(()) | Err(RecvTimeoutError::Disconnected) => {
            // Finished or panicked: join to propagate any panic.
            if let Err(e) = handle.join() {
                std::panic::resume_unwind(e);
            }
        }
        Err(RecvTimeoutError::Timeout) => {
            panic!("chaos scenario `{label}` hung past {timeout:?}");
        }
    }
}

fn chaotic_blueprint(seed: u64, scheduler: SchedulerMode) -> Blueprint {
    Blueprint::builder()
        .with_hr_domain(small_hr())
        .with_fault_plan(FaultPlan::chaotic(seed))
        .with_retry_policy(RetryPolicy::standard(seed))
        .with_circuit_breakers(BreakerConfig::default())
        .with_report_timeout(Duration::from_millis(800))
        .with_scheduler(scheduler)
        .build()
        .expect("chaotic blueprint assembles")
}

/// A failed node that actually reached an agent must leave a quarantined
/// dead-letter behind; input-resolution failures never issued an
/// instruction, so there is nothing to quarantine.
fn assert_report_terminal(bp: &Blueprint, scope: &str, report: &ExecutionReport) {
    match &report.outcome {
        Outcome::Completed { .. } | Outcome::Aborted { .. } => {}
        Outcome::Replanned { inner, .. } => assert_report_terminal(bp, scope, inner),
        Outcome::Failed { node, .. } => {
            let attempted = report.node_results.iter().any(|n| n.node == *node && !n.ok);
            if attempted {
                let dlq = DeadLetterQueue::for_scope(bp.store(), scope)
                    .expect("dead-letter stream exists");
                assert!(
                    !dlq.is_empty().unwrap(),
                    "failed node {node} exhausted its attempts without being quarantined"
                );
            }
        }
    }
}

fn assert_terminal(bp: &Blueprint, scope: &str, result: Result<ExecutionReport, CoreError>) {
    match result {
        // Planning itself may trip over an injected model fault; an error
        // return is a legitimate terminal state, not a hang.
        Err(_) => {}
        Ok(report) => assert_report_terminal(bp, scope, &report),
    }
}

#[test]
fn centralized_flow_reaches_terminal_state_under_chaos() {
    for seed in chaos_seeds() {
        with_watchdog(
            format!("centralized seed {seed}"),
            Duration::from_secs(60),
            move || {
                let bp = chaotic_blueprint(seed, SchedulerMode::Sequential);
                let session = bp.start_session().expect("session starts");
                let scope = session.session().scope().to_string();
                let result = session.handle(RUNNING_EXAMPLE);
                assert_terminal(&bp, &scope, result);
            },
        );
    }
}

#[test]
fn centralized_flow_reaches_terminal_state_under_parallel_scheduler() {
    // The same seeded fault plans, but with the ready-set scheduler
    // dispatching every satisfied node concurrently: the complete-or-
    // quarantined invariant must hold regardless of completion order.
    for seed in chaos_seeds() {
        with_watchdog(
            format!("parallel centralized seed {seed}"),
            Duration::from_secs(60),
            move || {
                let bp = chaotic_blueprint(seed, SchedulerMode::Parallel { max_in_flight: 0 });
                let session = bp.start_session().expect("session starts");
                let scope = session.session().scope().to_string();
                let result = session.handle(RUNNING_EXAMPLE);
                assert_terminal(&bp, &scope, result);
            },
        );
    }
}

#[test]
fn decentralized_flow_never_hangs_under_chaos() {
    for seed in chaos_seeds() {
        with_watchdog(
            format!("decentralized seed {seed}"),
            Duration::from_secs(60),
            move || {
                let bp = chaotic_blueprint(seed, SchedulerMode::Parallel { max_in_flight: 0 });
                let session = bp.start_session().expect("session starts");
                let sub = bp
                    .store()
                    .subscribe(Selector::AllStreams, TagFilter::any_of(["summary"]))
                    .unwrap();
                session.say("How many applicants per city?").unwrap();
                // Bounded wait: either the agent chain completes, or an
                // injected fault (dropped message, panic, model failure)
                // legitimately broke the chain.
                let outcome = sub.recv_timeout(Duration::from_secs(10));
                if outcome.is_err() {
                    let injected = bp
                        .fault_injector()
                        .map(|inj| inj.total())
                        .unwrap_or_default();
                    assert!(
                        injected > 0,
                        "seed {seed}: conversation stalled with no fault injected"
                    );
                }
            },
        );
    }
}

#[test]
fn fault_free_plan_under_same_harness_always_completes() {
    // Control group: the same harness with a zero-rate fault plan must
    // complete both flows — proves the chaos failures above come from the
    // injected faults, not the resilience machinery itself.
    with_watchdog("control run".to_string(), Duration::from_secs(60), || {
        let bp = Blueprint::builder()
            .with_hr_domain(small_hr())
            .with_fault_plan(FaultPlan::none(0))
            .with_retry_policy(RetryPolicy::standard(0))
            .with_circuit_breakers(BreakerConfig::default())
            .build()
            .unwrap();
        let session = bp.start_session().unwrap();
        let report = session.handle(RUNNING_EXAMPLE).unwrap();
        assert!(report.outcome.succeeded(), "outcome: {:?}", report.outcome);
        assert_eq!(bp.fault_injector().unwrap().total(), 0);
    });
}
