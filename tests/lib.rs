//! Shared fixtures for the cross-crate integration tests (in `tests/`).

use blueprint_core::hrdomain::HrConfig;
use blueprint_core::Blueprint;

/// A small deterministic HR configuration for fast integration tests.
pub fn small_hr() -> HrConfig {
    HrConfig {
        seed: 99,
        jobs: 80,
        applicants: 60,
        companies: 10,
        applications: 150,
    }
}

/// A fully wired runtime over the small HR domain.
pub fn hr_blueprint() -> Blueprint {
    Blueprint::builder()
        .with_hr_domain(small_hr())
        .build()
        .expect("blueprint assembles")
}
