//! QoS optimization (§V-G, §V-H): objectives, constraints, model-tier
//! selection, and budget-driven aborts.
//!
//! Run with: `cargo run -p blueprint-examples --bin qos_optimization`

use blueprint_core::coordinator::Outcome;
use blueprint_core::llmsim::ModelProfile;
use blueprint_core::optimizer::{
    optimize_choices, pareto_frontier, Candidate, CostProfile, Objective, QosConstraints,
};
use blueprint_core::Blueprint;
use blueprint_examples::banner;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("1. The tier trade-off space and its Pareto frontier");
    let tiers = ModelProfile::tiers();
    let candidates: Vec<Candidate<String>> = tiers
        .iter()
        .map(|t| {
            Candidate::new(
                t.name.clone(),
                CostProfile::new(t.call_cost(50, 50), t.call_latency_micros(50), t.accuracy),
            )
        })
        .collect();
    for c in &candidates {
        println!(
            "  {:<10} cost {:>6.3}  latency {:>7} µs  accuracy {:.2}",
            c.item, c.profile.cost_per_call, c.profile.latency_micros, c.profile.accuracy
        );
    }
    let frontier = pareto_frontier(&candidates);
    println!(
        "Pareto-optimal tiers: {:?}",
        frontier
            .iter()
            .map(|&i| &candidates[i].item)
            .collect::<Vec<_>>()
    );

    banner("2. Per-operator tier assignment under an accuracy floor");
    let per_node: Vec<CostProfile> = candidates.iter().map(|c| c.profile).collect();
    let pipeline = vec![per_node.clone(), per_node.clone(), per_node];
    for floor in [0.0, 0.5, 0.7, 0.9] {
        let constraints = QosConstraints::none().with_min_accuracy(floor);
        match optimize_choices(&pipeline, Objective::MinCost, &constraints) {
            Some(choice) => {
                let names: Vec<&str> = choice.iter().map(|&i| tiers[i].name.as_str()).collect();
                let total = choice
                    .iter()
                    .enumerate()
                    .fold(CostProfile::FREE, |acc, (n, &c)| acc.then(&pipeline[n][c]));
                println!(
                    "  floor {floor:.1} → {:?} (cost {:.2}, accuracy {:.3})",
                    names, total.cost_per_call, total.accuracy
                );
            }
            None => println!("  floor {floor:.1} → infeasible"),
        }
    }

    banner("3. Budget enforcement on a live task (§V-H)");
    for max_cost in [0.001, 10.0] {
        let blueprint = Blueprint::builder()
            .with_hr_domain(Default::default())
            .with_constraints(QosConstraints::none().with_max_cost(max_cost))
            .build()?;
        let session = blueprint.start_session()?;
        let report =
            session.handle("I am looking for a data scientist position in SF bay area.")?;
        let verdict = match &report.outcome {
            Outcome::Completed { .. } => "completed".to_string(),
            Outcome::Aborted { reason } => format!("aborted ({reason})"),
            other => format!("{other:?}"),
        };
        println!(
            "  max_cost {max_cost:>6.3} → {verdict}; spent {:.3}",
            report.budget.spent_cost
        );
    }

    banner("4. Accuracy enacted: cheap tiers lose knowledge items");
    for profile in ModelProfile::tiers() {
        let llm = blueprint_core::llmsim::SimLlm::new(profile.clone());
        let (cities, usage) = llm.knowledge("cities in the sf bay area");
        println!(
            "  {:<10} returned {} cities (cost {:.4})",
            profile.name,
            cities.len(),
            usage.cost
        );
    }
    Ok(())
}
