//! Shared helpers for the runnable examples.
//!
//! Each binary in this crate exercises the blueprint public API on one of
//! the paper's scenarios:
//!
//! * `quickstart` — boot the runtime, plan and execute the running example;
//! * `career_assistant` — Scenario I (§II-A): conversational career
//!   assistance with centralized planning;
//! * `agentic_employer` — Scenario II / §VI case study: UI events and
//!   conversation driving decentralized agent chains (Figs 8–10);
//! * `qos_optimization` — the QoS machinery: objectives, constraints,
//!   model-tier selection, and budget-driven aborts.

/// Prints a section banner.
pub fn banner(title: &str) {
    println!("\n{}", "═".repeat(72));
    println!("  {title}");
    println!("{}", "═".repeat(72));
}
