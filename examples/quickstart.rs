//! Quickstart: boot the blueprint, inspect the plan for the paper's running
//! example, execute it, and look at the observability surfaces.
//!
//! Run with: `cargo run -p blueprint-examples --bin quickstart`

use blueprint_core::Blueprint;
use blueprint_examples::banner;

const RUNNING_EXAMPLE: &str = "I am looking for a data scientist position in SF bay area.";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("1. Assemble the runtime (Fig 1) with the YourJourney HR domain");
    let blueprint = Blueprint::builder()
        .with_hr_domain(Default::default())
        .with_tracing()
        .with_metrics()
        .build()?;
    println!("agents registered : {:?}", blueprint.factory().registered());
    println!("data assets       : {:?}", blueprint.data_registry().list());

    banner("2. Start a session and plan the running example (Fig 6)");
    let session = blueprint.start_session()?;
    let plan = session.plan(RUNNING_EXAMPLE)?;
    print!("{}", plan.render_text());
    let projected = plan.projected_profile();
    println!(
        "projected QoS     : cost {:.2}, latency {} ms, accuracy {:.2}",
        projected.cost_per_call,
        projected.latency_micros / 1_000,
        projected.accuracy
    );

    banner("3. Execute through the task coordinator (§V-H)");
    let report = session.execute(&plan)?;
    println!("outcome succeeded : {}", report.outcome.succeeded());
    for n in &report.node_results {
        println!(
            "  {} {:<14} ok={} cost={:.3} latency={}µs",
            n.node, n.agent, n.ok, n.cost, n.latency_micros
        );
    }
    println!(
        "budget            : spent {:.3} cost units, {} µs",
        report.budget.spent_cost, report.budget.spent_latency_micros
    );

    banner("4. Observability: session activity and flow trace (§V-A, §V-E)");
    for line in session.session().activity().iter().take(12) {
        println!("  {line}");
    }
    let stats = blueprint.store().stats();
    println!(
        "streams: {} created, {} messages, {} deliveries",
        stats.streams_created, stats.messages_published, stats.deliveries
    );

    banner("5. Tracing: span timeline + Chrome trace export");
    let trace = blueprint.trace();
    print!("{}", trace.render_text());
    let trace_path = std::path::Path::new("target/quickstart-trace.json");
    trace.write_chrome_trace(trace_path)?;
    println!(
        "wrote {} ({} spans) — open in chrome://tracing or https://ui.perfetto.dev",
        trace_path.display(),
        trace.spans.len()
    );

    banner("6. Metrics: every named instrument the run touched");
    print!("{}", blueprint.metrics().render_text());
    Ok(())
}
