//! Scenario II / the §VI case study: the Agentic Employer.
//!
//! Reproduces both interaction flows of the paper:
//!
//! * **Fig 9** — a UI click on a job id flows through streams to the
//!   Agentic Employer agent, which emits a plan; the Task Coordinator
//!   unrolls it into an `execute-agent` control message; the Summarizer
//!   produces the applicant-pool summary.
//! * **Fig 10** — conversation text is classified by the Intent Classifier,
//!   routed by the Agentic Employer as an `NLQ`-tagged stream, translated
//!   by NL2Q, executed by the SQL agent, and explained by the Query
//!   Summarizer — all via stream tags, no central driver.
//!
//! Run with: `cargo run -p blueprint-examples --bin agentic_employer`

use std::time::Duration;

use blueprint_core::agents::UiForm;
use blueprint_core::streams::{Selector, TagFilter};
use blueprint_core::Blueprint;
use blueprint_examples::banner;
use serde_json::json;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let blueprint = Blueprint::builder()
        .with_hr_domain(Default::default())
        .build()?;
    let session = blueprint.start_session()?;

    banner("Fig 9: flow initiated from the UI");
    let form = UiForm::new("applicants", "Applicants by job");
    let summary_sub = blueprint
        .store()
        .subscribe(Selector::AllStreams, TagFilter::any_of(["summary"]))?;
    let status_sub = blueprint
        .store()
        .subscribe(Selector::AllStreams, TagFilter::any_of(["task-status"]))?;

    println!("employer clicks job id 3 in the UI…");
    session.click(&form, "job", json!(3))?;
    let status = status_sub.recv_timeout(Duration::from_secs(10))?;
    println!("coordinator status: {}", status.control_op().unwrap_or("?"));
    let summary = summary_sub.recv_timeout(Duration::from_secs(10))?;
    println!("summarizer → {}", summary.payload.as_str().unwrap_or("?"));

    banner("Fig 10: flow initiated from conversation");
    let summary_sub2 = blueprint
        .store()
        .subscribe(Selector::AllStreams, TagFilter::any_of(["summary"]))?;
    println!("employer types: \"How many applicants per city?\"");
    session.say("How many applicants per city?")?;
    let summary2 = summary_sub2.recv_timeout(Duration::from_secs(10))?;
    println!(
        "query summarizer → {}",
        summary2.payload.as_str().unwrap_or("?")
    );

    banner("The recorded message-flow trace (sequence diagram)");
    let trace = blueprint.store().monitor().render_sequence();
    for line in trace.lines().take(30) {
        println!("{line}");
    }
    let participants = blueprint.store().monitor().participants();
    println!("\nparticipants: {}", participants.join(" · "));
    Ok(())
}
