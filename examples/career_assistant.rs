//! Scenario I (§II-A): the conversational career assistant.
//!
//! Job seekers explore roles and run searches; each utterance is planned by
//! the task planner and executed by the coordinator, with the data planner
//! pulling jobs through the Fig 7 decomposition (LLM region knowledge +
//! taxonomy title expansion + relational select).
//!
//! Run with: `cargo run -p blueprint-examples --bin career_assistant`

use blueprint_core::coordinator::Outcome;
use blueprint_core::hrdomain::HrConfig;
use blueprint_core::Blueprint;
use blueprint_examples::banner;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let blueprint = Blueprint::builder()
        .with_hr_domain(HrConfig {
            seed: 2026,
            jobs: 400,
            applicants: 200,
            companies: 30,
            applications: 800,
        })
        .build()?;
    let session = blueprint.start_session()?;

    let inquiries = [
        "I am looking for a data scientist position in SF bay area.",
        "I am looking for a machine learning engineer position in oakland.",
        "what are the required skills for a data scientist?",
    ];

    for utterance in inquiries {
        banner(&format!("seeker: \"{utterance}\""));
        match session.handle(utterance) {
            Ok(report) => match &report.outcome {
                Outcome::Completed { output } => {
                    if let Some(rendered) = output.get("rendered").and_then(|v| v.as_str()) {
                        println!("{rendered}");
                    } else if let Some(summary) = output.get("summary").and_then(|v| v.as_str()) {
                        println!("{summary}");
                    } else {
                        println!("{output}");
                    }
                    println!(
                        "(cost {:.3}, latency {} ms, {} agents)",
                        report.budget.spent_cost,
                        report.budget.spent_latency_micros / 1_000,
                        report.node_results.len()
                    );
                }
                other => println!("(did not complete: {other:?})"),
            },
            Err(e) => println!("(planning failed: {e})"),
        }
    }

    banner("the data planner's decomposition for the region query (Fig 7)");
    let plan = blueprint
        .data_planner()
        .plan_job_query("data scientist position in sf bay area")?;
    print!("{}", plan.render_text());
    let executed = blueprint.data_planner().execute(&plan)?;
    println!(
        "→ {} matching jobs, data-plan cost {:.3}",
        executed.value.as_array().map(Vec::len).unwrap_or(0),
        executed.actual.cost_per_call
    );
    Ok(())
}
