//! A terminal chat REPL over the blueprint runtime: type text and watch the
//! decentralized agent chain answer; slash-commands expose the architecture
//! (plans, budget, activity, trace).
//!
//! Run with: `cargo run -p blueprint-examples --bin chat_repl`
//!
//! Commands:
//!
//! ```text
//! /plan <text>   show the task plan without executing
//! /run <text>    centralized execution through the coordinator
//! /activity      session activity log
//! /trace         recent message-flow trace
//! /stats         streams-database counters
//! /quit          exit
//! ```
//!
//! Anything else is published as tagged user text (decentralized path).

use std::io::{BufRead, Write};
use std::time::Duration;

use blueprint_core::coordinator::Outcome;
use blueprint_core::streams::{Selector, TagFilter};
use blueprint_core::Blueprint;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let blueprint = Blueprint::builder()
        .with_hr_domain(Default::default())
        .with_guardrails()
        .build()?;
    let session = blueprint.start_session()?;
    let summaries = blueprint.store().subscribe(
        Selector::AllStreams,
        TagFilter::any_of(["summary", "reply"]),
    )?;

    println!(
        "blueprint chat — YourJourney HR domain loaded ({} agents).",
        blueprint.factory().registered().len()
    );
    println!("Try: How many applicants per city?   (or /run, /plan, /trace, /quit)\n");

    let stdin = std::io::stdin();
    let mut lines = stdin.lock().lines();
    loop {
        print!("you> ");
        std::io::stdout().flush()?;
        let Some(Ok(line)) = lines.next() else { break };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("/plan ") {
            match session.plan(rest) {
                Ok(plan) => print!("{}", plan.render_text()),
                Err(e) => println!("(cannot plan: {e})"),
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("/run ") {
            match session.handle(rest) {
                Ok(report) => {
                    match &report.outcome {
                        Outcome::Completed { output } => println!(
                            "sys> {}",
                            output
                                .get("rendered")
                                .or_else(|| output.get("summary"))
                                .and_then(|v| v.as_str())
                                .unwrap_or("(done)")
                        ),
                        other => println!("sys> {other:?}"),
                    }
                    println!(
                        "     (cost {:.3}, latency {} ms)",
                        report.budget.spent_cost,
                        report.budget.spent_latency_micros / 1_000
                    );
                }
                Err(e) => println!("(failed: {e})"),
            }
            continue;
        }
        match line {
            "/quit" | "/exit" => break,
            "/activity" => {
                for a in session.session().activity() {
                    println!("  {a}");
                }
            }
            "/trace" => {
                let trace = blueprint.store().monitor().render_sequence();
                for l in trace
                    .lines()
                    .rev()
                    .take(15)
                    .collect::<Vec<_>>()
                    .into_iter()
                    .rev()
                {
                    println!("{l}");
                }
            }
            "/stats" => {
                let s = blueprint.store().stats();
                println!(
                    "  streams={} messages={} deliveries={} bytes={}",
                    s.streams_created, s.messages_published, s.deliveries, s.bytes_published
                );
            }
            text => {
                // Moderation gate, then the decentralized path (Fig 10).
                let verdict = blueprint_core::hrdomain::moderate(text);
                if !verdict.allowed {
                    println!(
                        "sys> blocked by content moderation: {}",
                        verdict.reasons.join("; ")
                    );
                    continue;
                }
                session.say(text)?;
                match summaries.recv_timeout(Duration::from_secs(10)) {
                    Ok(m) => println!("sys> {}", m.payload.as_str().unwrap_or("?")),
                    Err(_) => println!("sys> (no agent answered — try /run {text})"),
                }
            }
        }
    }
    println!("bye.");
    Ok(())
}
