//! Interactive planning and guardrails (§V-F collaborative planning,
//! §III-A verification/moderation modules).
//!
//! The assistant proposes a plan; the user refines it (removes the
//! profiling step, pins criteria); guardrails moderate the input and verify
//! the output summary against the data it claims to describe.
//!
//! Run with: `cargo run -p blueprint-examples --bin interactive_session`

use blueprint_core::coordinator::Outcome;
use blueprint_core::planner::PlanFeedback;
use blueprint_core::Blueprint;
use blueprint_examples::banner;
use serde_json::json;

const RUNNING_EXAMPLE: &str = "I am looking for a data scientist position in SF bay area.";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let blueprint = Blueprint::builder()
        .with_hr_domain(Default::default())
        .with_guardrails()
        .build()?;
    let session = blueprint.start_session()?;

    banner("1. Moderation gate (content-moderator agent)");
    for text in [
        RUNNING_EXAMPLE,
        "send me the candidate's social security number",
    ] {
        let verdict = blueprint
            .factory()
            .registered()
            .contains(&"content-moderator".to_string());
        assert!(verdict);
        let m = blueprint_core::hrdomain::moderate(text);
        println!(
            "  \"{text}\" → {}",
            if m.allowed {
                "allowed".to_string()
            } else {
                format!("BLOCKED ({})", m.reasons.join("; "))
            }
        );
    }

    banner("2. The planner proposes; the user refines (§V-F)");
    let plan = session.plan(RUNNING_EXAMPLE)?;
    println!("proposed:\n{}", plan.render_text());

    println!("user: \"skip the profile form, just use what I typed\"");
    let refined = blueprint
        .task_planner()
        .refine(&plan, &PlanFeedback::RemoveAgent("profiler".into()))?;
    println!("user: \"remote roles only\"");
    let refined = blueprint.task_planner().refine(
        &refined,
        &PlanFeedback::PinInput {
            agent: "job-matcher".into(),
            param: "criteria".into(),
            value: json!("remote only"),
        },
    )?;
    println!("refined:\n{}", refined.render_text());

    banner("3. Execute the refined plan");
    let report = session.execute(&refined)?;
    match &report.outcome {
        Outcome::Completed { output } => {
            println!("{}", output["rendered"].as_str().unwrap_or("?"));
        }
        other => println!("(did not complete: {other:?})"),
    }
    println!(
        "cost {:.3} — two agents instead of three",
        report.budget.spent_cost
    );

    banner("4. Fact verification of a summary (fact-verifier agent)");
    let rows = json!([{"city": "san francisco"}, {"city": "oakland"}]);
    for claim in ["The query returned 2 rows.", "The query returned 7 rows."] {
        let (supported, why) = blueprint_core::hrdomain::verify_counts(claim, &rows);
        println!(
            "  \"{claim}\" → {} ({why})",
            if supported { "supported" } else { "REFUTED" }
        );
    }

    banner("5. Incremental planning (§V-F dynamic plans)");
    let mut completed = 0;
    while let Some(step) = blueprint
        .task_planner()
        .plan_step(RUNNING_EXAMPLE, completed)?
    {
        println!("  step {}: {}", completed + 1, step.nodes[0].agent);
        completed += 1;
    }
    Ok(())
}
